// Exact distribution of the (k,d)-choice process on small instances, by
// full enumeration of the Markov chain over sorted load vectors.
//
// Because bins are exchangeable and probes are uniform, the sorted load
// multiset is a lossless state. One round enumerates all n^d ordered probe
// tuples (each with probability n^-d); within a tuple, the k kept slots are
// the k of smallest height, and boundary ties (slots at the cut-off height,
// necessarily in distinct bins) are chosen uniformly — enumerated exactly
// via combinations.
//
// This is a verification oracle: the test suite cross-checks simulated
// frequencies against these exact probabilities (chi-square), closing the
// loop between the fast sampling kernel and the process definition. It is
// exponential in d and n — intended for n, d <= ~6.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/types.hpp"

namespace kdc::core {

/// A distribution over sorted (descending) load vectors.
using state_distribution = std::map<std::vector<bin_load>, double>;

/// One exact round: the distribution of the sorted load vector after
/// placing k balls from state `sorted_loads` (must be sorted descending).
/// Requires 1 <= k <= d and n^d to be enumerable (contract-checked at 10^8).
[[nodiscard]] state_distribution
exact_round(const std::vector<bin_load>& sorted_loads, std::uint64_t k,
            std::uint64_t d);

/// Exact distribution over sorted load vectors after `rounds` rounds of the
/// (k,d)-choice process starting from n empty bins.
[[nodiscard]] state_distribution exact_process(std::uint64_t n,
                                               std::uint64_t k,
                                               std::uint64_t d,
                                               std::uint64_t rounds);

/// Exact distribution of the maximum load after n balls land in n bins
/// (n/k rounds; requires k | n).
[[nodiscard]] std::map<bin_load, double>
exact_max_load(std::uint64_t n, std::uint64_t k, std::uint64_t d);

} // namespace kdc::core
