// Sampling utilities built on the unbiased bounded-uniform primitive:
// with-replacement bin sampling (the (k,d)-choice probe step), Floyd's
// without-replacement sampling, Fisher-Yates shuffling and random
// permutations (used by the serialized process of Definition 1).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/uniform.hpp"
#include "support/contracts.hpp"

namespace kdc::rng {

/// Batched Lemire sampler for a FIXED bound: fills a block of raw 64-bit
/// generator words ahead of time and reduces one per next() call, so a hot
/// loop drawing millions of uniforms below the same bound (the level-kernel
/// probe step samples below n for an entire run) is a tight
/// pop-multiply-compare instead of a generator call per draw. The rejection
/// threshold is computed once at construction — uniform_below pays its
/// division on every unlucky low product instead.
///
/// next() consumes generator words in exactly the order repeated
/// uniform_below(gen, bound) calls would, and accepts/rejects on the same
/// condition, so the output stream is bit-identical to uniform_below for a
/// same-seeded 64-bit generator.
///
/// The sampler holds no reference to the generator — next(gen) takes it per
/// call, so the class is plain copyable state (bound, threshold, buffered
/// words) and a process owning both a generator and a sampler can use the
/// compiler-generated copy/move without dangling. Pass the SAME generator
/// to every next() call: buffered words from one generator must not be
/// mixed with refills from another.
class batched_uniform {
public:
    /// Requires bound >= 1.
    explicit batched_uniform(std::uint64_t bound) : bound_(bound) {
        KD_EXPECTS(bound >= 1); // before the % below: no division by zero
        threshold_ = (0 - bound) % bound;
    }

    [[nodiscard]] std::uint64_t bound() const noexcept { return bound_; }

    /// One draw uniform in [0, bound), unbiased.
    template <bit_generator_64 G>
    [[nodiscard]] std::uint64_t next(G& gen) {
        // GCC/Clang extension; pragma scoped as in uniform.hpp.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
        using u128 = unsigned __int128;
#pragma GCC diagnostic pop
        for (;;) {
            if (pos_ == buffer_.size()) {
                for (auto& word : buffer_) {
                    word = gen();
                }
                pos_ = 0;
            }
            const u128 m = static_cast<u128>(buffer_[pos_++]) *
                           static_cast<u128>(bound_);
            if (static_cast<std::uint64_t>(m) >= threshold_) {
                return static_cast<std::uint64_t>(m >> 64);
            }
            ++rejected_; // cold: P(reject) = threshold / 2^64 < bound / 2^64
        }
    }

    // -- Introspection for exact parallel replay (core/sharded_kernel.cpp).
    //
    // A worker reconstructing the sampler state a known number of draws
    // ahead needs three things: how far the current refill block has been
    // consumed, a way to reposition inside a block it regenerated itself,
    // and a rejection count to detect when the no-rejection position
    // arithmetic was violated (and fall back to a serial replay).

    /// Words refilled per generator burst: next() consumes the generator in
    /// blocks of exactly this many calls.
    static constexpr std::size_t block_size = 256;

    /// Unconsumed words left in the current refill block (0 when the next
    /// draw triggers a refill).
    [[nodiscard]] std::size_t buffered() const noexcept {
        return buffer_.size() - pos_;
    }

    /// Discards `count` buffered words as if next() had drawn (and
    /// accepted) them. Requires count <= buffered().
    void drop(std::size_t count) {
        KD_EXPECTS(count <= buffered());
        pos_ += count;
    }

    /// Forces an immediate refill block (256 generator calls), discarding
    /// any buffered words — the state right after next()'s own refill.
    template <bit_generator_64 G>
    void refill(G& gen) {
        for (auto& word : buffer_) {
            word = gen();
        }
        pos_ = 0;
    }

    /// Rejected (re-drawn) words since construction. Monotone; the Lemire
    /// rejection probability is bound / 2^64 per draw, so this stays 0 for
    /// any realistic run length — which is exactly what the parallel tape
    /// pregeneration asserts before trusting its reconstruction.
    [[nodiscard]] std::uint64_t rejections() const noexcept {
        return rejected_;
    }

private:
    std::uint64_t bound_;
    std::uint64_t threshold_ = 0;
    std::uint64_t rejected_ = 0;
    std::array<std::uint64_t, 256> buffer_{};
    std::size_t pos_ = buffer_.size(); // first next() triggers a fill
};

/// Fills `out` with indices drawn i.u.r. *with replacement* from [0, n).
/// This is exactly the probe step of the (k,d)-choice process.
template <typename G>
    requires std::uniform_random_bit_generator<G>
void sample_with_replacement(G& gen, std::uint64_t n,
                             std::span<std::uint32_t> out) {
    KD_EXPECTS(n >= 1);
    for (auto& slot : out) {
        slot = static_cast<std::uint32_t>(uniform_below(gen, n));
    }
}

/// In-place Fisher-Yates shuffle.
template <typename G, typename T>
    requires std::uniform_random_bit_generator<G>
void shuffle(G& gen, std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(uniform_below(gen, i));
        std::swap(items[i - 1], items[j]);
    }
}

/// Reusable epoch-stamp scratch for sample_without_replacement: one stamp per
/// domain element, so the membership test "was this index already chosen?" is
/// O(1) instead of a linear scan over the chosen prefix. Hold one of these
/// per sampler (e.g. per allocation process) to amortize the O(n) stamp
/// array across calls.
struct sample_scratch {
    std::vector<std::uint32_t> stamps;
    std::uint32_t epoch = 0;
};

/// Fills `out` with out.size() distinct indices from [0, n) via Robert
/// Floyd's algorithm: O(out.size()) expected work per call once `scratch` is
/// warm. Output order is randomized.
template <typename G>
    requires std::uniform_random_bit_generator<G>
void sample_without_replacement(G& gen, std::uint64_t n,
                                sample_scratch& scratch,
                                std::span<std::uint32_t> out) {
    const std::uint64_t count = out.size();
    KD_EXPECTS(count <= n);
    if (scratch.stamps.size() < n) {
        scratch.stamps.assign(n, 0);
        scratch.epoch = 0;
    }
    if (++scratch.epoch == 0) { // stamp wrap-around: clear and restart
        std::fill(scratch.stamps.begin(), scratch.stamps.end(), 0u);
        scratch.epoch = 1;
    }
    std::size_t written = 0;
    for (std::uint64_t j = n - count; j < n; ++j) {
        const auto candidate =
            static_cast<std::uint32_t>(uniform_below(gen, j + 1));
        const auto pick = scratch.stamps[candidate] != scratch.epoch
                              ? candidate
                              : static_cast<std::uint32_t>(j);
        scratch.stamps[pick] = scratch.epoch;
        out[written++] = pick;
    }
    // Floyd's algorithm biases the *order* (later slots tend to hold larger
    // values); shuffle so callers may treat the output as a random sequence.
    shuffle(gen, out);
    KD_ENSURES(written == count);
}

/// Returns `count` distinct indices from [0, n) via Robert Floyd's algorithm.
/// Convenience overload that builds its own scratch (O(n) stamp allocation);
/// hot paths should hold a sample_scratch and use the overload above. The
/// output sequence is identical for a same-seeded generator.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t>
sample_without_replacement(G& gen, std::uint64_t n, std::uint64_t count) {
    std::vector<std::uint32_t> chosen(count);
    sample_scratch scratch;
    sample_without_replacement(gen, n, scratch,
                               std::span<std::uint32_t>(chosen));
    return chosen;
}

/// Returns a uniformly random permutation of {0, 1, ..., n-1}.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t> random_permutation(G& gen,
                                                            std::uint32_t n) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    shuffle(gen, std::span<std::uint32_t>(perm));
    return perm;
}

} // namespace kdc::rng
