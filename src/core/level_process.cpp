#include "core/level_process.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

#include "core/process.hpp"

namespace kdc::core {

static_assert(allocation_process<kd_choice_level_process>);
static_assert(allocation_process<single_choice_level_process>);
static_assert(allocation_process<d_choice_level_process>);

namespace detail {

dense_mirror::dense_mirror(const level_profile& profile)
    : counts(std::max<std::uint64_t>(profile.level_capacity(),
                                     profile.max_level() + 1),
             0),
      top(profile.max_level()) {
    for (std::uint64_t level = 0; level <= top; ++level) {
        counts[level] = profile.bins_at(level);
    }
    while (counts[base] == 0) {
        ++base;
    }
}

} // namespace detail

using detail::dense_mirror;

kd_choice_level_process::kd_choice_level_process(std::uint64_t n,
                                                 std::uint64_t k,
                                                 std::uint64_t d,
                                                 std::uint64_t seed)
    : kd_choice_level_process(level_profile(n), k, d, seed) {}

kd_choice_level_process::kd_choice_level_process(level_profile initial,
                                                 std::uint64_t k,
                                                 std::uint64_t d,
                                                 std::uint64_t seed)
    : profile_(std::move(initial)), k_(k), d_(d), gen_(seed),
      probe_draws_(profile_.n()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= profile_.n(), "cannot probe more bins than exist");
    distinct_.reserve(d);
    slots_.reserve(d);
    kept_per_probe_.reserve(d);
}

void kd_choice_level_process::count_kept() {
    kept_per_probe_.assign(distinct_.size(), 0);
    const std::size_t s = slots_.size();
    if (k_ >= s) {
        for (const slot& sl : slots_) {
            ++kept_per_probe_[sl.probe];
        }
        return;
    }

    // Bucket the slot heights. The range is (load span + d) — both tiny.
    std::uint64_t min_h = slots_[0].height;
    std::uint64_t max_h = slots_[0].height;
    for (const slot& sl : slots_) {
        min_h = std::min(min_h, sl.height);
        max_h = std::max(max_h, sl.height);
    }
    const std::size_t width = static_cast<std::size_t>(max_h - min_h) + 1;
    if (width > height_hist_.size()) {
        height_hist_.resize(width);
    }
    std::fill(height_hist_.begin(),
              height_hist_.begin() + static_cast<std::ptrdiff_t>(width), 0u);
    for (const slot& sl : slots_) {
        ++height_hist_[static_cast<std::size_t>(sl.height - min_h)];
    }

    // Threshold bucket: the k-th smallest slot's height. Everything below
    // is kept outright; `need` slots at the threshold win by tie key.
    std::uint64_t need = k_;
    std::size_t threshold = 0;
    while (need > height_hist_[threshold]) {
        need -= height_hist_[threshold];
        ++threshold;
    }

    if (need == height_hist_[threshold]) {
        // The whole threshold bucket is kept — no tie keys to compare.
        for (const slot& sl : slots_) {
            if (sl.height - min_h <= threshold) {
                ++kept_per_probe_[sl.probe];
            }
        }
        return;
    }
    threshold_slots_.clear();
    for (std::uint32_t i = 0; i < s; ++i) {
        const std::uint64_t bucket = slots_[i].height - min_h;
        if (bucket < threshold) {
            ++kept_per_probe_[slots_[i].probe];
        } else if (bucket == threshold) {
            threshold_slots_.push_back(i);
        }
    }
    // Partial selection of the `need` smallest tie keys at the threshold.
    for (std::uint64_t won = 0; won < need; ++won) {
        std::size_t min_at = won;
        for (std::size_t t = won + 1; t < threshold_slots_.size(); ++t) {
            if (slots_[threshold_slots_[t]].tie_key <
                slots_[threshold_slots_[min_at]].tie_key) {
                min_at = t;
            }
        }
        std::swap(threshold_slots_[won], threshold_slots_[min_at]);
        ++kept_per_probe_[slots_[threshold_slots_[won]].probe];
    }
}

void kd_choice_level_process::run_round() {
    // A bin sampled m times can gain up to m <= d balls this round.
    profile_.ensure_levels(profile_.max_level() + d_ + 1);

    // Probe step: one uniform-below-n draw decides collision vs fresh bin
    // (see the header comment for the exactness argument). Fresh bins are
    // extracted so later draws sample the remaining profile without
    // replacement.
    distinct_.clear();
    for (std::uint64_t probe = 0; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto j = static_cast<std::uint64_t>(distinct_.size());
        if (v < j) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const std::uint64_t level = profile_.level_at_rank(v - j);
            profile_.extract_bin(level);
            distinct_.push_back({level, 1});
        }
    }

    // Multiplicity rule as slot selection, exactly as place_round: the m
    // occurrences of a bin at level l own slots of heights l+1..l+m; keep
    // the k smallest (height, tie_key). Random tie keys are drawn ONLY in
    // rounds with a duplicated probe: without duplicates every slot at a
    // height sits on a bin at the same level, and bins at a level are
    // exchangeable, so any deterministic tie-break (here: probe order)
    // yields the same profile — skipping d serially dependent generator
    // calls on almost every round at large n.
    const bool has_duplicate = distinct_.size() < d_;
    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const auto& probe = distinct_[t];
        for (std::uint32_t occurrence = 1; occurrence <= probe.multiplicity;
             ++occurrence) {
            slots_.push_back(
                slot{probe.level + occurrence,
                     has_duplicate ? static_cast<std::uint64_t>(gen_()) : t,
                     t});
        }
    }
    // A kept slot implies all lower slots of the same bin are kept, so the
    // per-bin kept count IS the bin's ball gain; reinsert each distinct bin
    // at its post-round level.
    count_kept();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        profile_.insert_bin(distinct_[t].level + kept_per_probe_[t]);
    }

    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void kd_choice_level_process::run_rounds_fast(std::uint64_t rounds) {
    dense_mirror mirror(profile_);
    if (fast_levels_.size() < d_) {
        fast_levels_.resize(d_);
    }

    for (std::uint64_t round = 0; round < rounds; ++round) {
        // A bin sampled m times can gain up to m <= d balls this round.
        mirror.ensure_headroom(d_);
        while (mirror.counts[mirror.base] == 0) {
            ++mirror.base; // reinsertions never land below a probed level
        }

        // Probe step — identical draw order and outcomes to run_round;
        // extraction is a plain decrement, so the subtract-scan always
        // sees the without-replacement remainder. A per-level histogram of
        // the probed bins is built as a side effect: it drives both the
        // selection threshold and the wholesale reinsert below.
        const std::size_t width =
            static_cast<std::size_t>(mirror.top - mirror.base) + 1;
        if (width > height_hist_.size()) {
            height_hist_.resize(width);
        }
        std::fill(height_hist_.begin(),
                  height_hist_.begin() + static_cast<std::ptrdiff_t>(width),
                  0u);
        std::uint64_t j = 0;
        std::uint64_t probe = 0;
        std::uint64_t dup_at = d_; // first duplicated draw, d_ if none
        if (width <= 64) [[likely]] {
            // Branch-eliminated probe loop: ranks resolve against an
            // inclusive running cumulative of the span's counts — the
            // level index is a sum of branchless compares and extraction
            // is a compare-subtract sweep, so the only data-dependent
            // branch left is the (almost never taken) duplicate check.
            if (fast_cum_.size() < width) {
                fast_cum_.resize(width);
            }
            std::uint64_t running = 0;
            for (std::size_t i = 0; i < width; ++i) {
                running += mirror.counts[mirror.base + i];
                fast_cum_[i] = running;
            }
            for (; probe < d_; ++probe) {
                const std::uint64_t v = probe_draws_.next(gen_);
                if (v >= j) [[likely]] {
                    const std::uint64_t r = v - j;
                    std::uint64_t e = 0;
                    for (std::size_t i = 0; i < width; ++i) {
                        e += fast_cum_[i] <= r ? 1 : 0;
                    }
                    for (std::size_t i = 0; i < width; ++i) {
                        fast_cum_[i] -= i >= e ? 1 : 0;
                    }
                    const std::uint64_t level = mirror.base + e;
                    --mirror.counts[level];
                    fast_levels_[j++] = level;
                    ++height_hist_[static_cast<std::size_t>(e)];
                } else {
                    dup_at = v;
                    break;
                }
            }
        } else {
            // Wide spans (snapshot starts far from steady state): the
            // subtract-scan's early exit beats a full-span sweep.
            for (; probe < d_; ++probe) {
                const std::uint64_t v = probe_draws_.next(gen_);
                if (v >= j) [[likely]] {
                    const std::uint64_t level = mirror.level_of_rank(v - j);
                    --mirror.counts[level];
                    fast_levels_[j++] = level;
                    ++height_hist_[static_cast<std::size_t>(level -
                                                            mirror.base)];
                } else {
                    dup_at = v;
                    break;
                }
            }
        }

        if (probe < d_) [[unlikely]] {
            run_duplicate_round_tail(mirror, j, probe, dup_at);
            continue;
        }

        // All multiplicities are 1: slot t is exactly probe t at height
        // level+1, so the k kept slots are the probes with the k smallest
        // (level, tie_key) pairs. No tie keys are drawn (matching
        // run_round's duplicate-free branch) and none are compared: every
        // slot at the threshold height sits on a bin at the same level,
        // and bins at a level are exchangeable — any `need` of them
        // winning yields the same counts vector.
        std::uint64_t need = k_;
        std::size_t bucket = 0;
        while (need > height_hist_[bucket]) {
            need -= height_hist_[bucket];
            ++bucket;
        }

        // Wholesale reinsert straight from the histogram: probed bins
        // below the threshold level gain their slot's ball, `need` of the
        // threshold-level bins gain theirs, the rest return unchanged.
        for (std::size_t b = 0; b < bucket; ++b) {
            mirror.counts[mirror.base + b + 1] += height_hist_[b];
        }
        mirror.counts[mirror.base + bucket] += height_hist_[bucket] - need;
        mirror.counts[mirror.base + bucket + 1] += need;
        for (std::size_t b = bucket + 1; b < width; ++b) {
            mirror.counts[mirror.base + b] += height_hist_[b];
        }
        mirror.top = std::max(mirror.top, mirror.base + bucket + 1);
    }

    profile_ = level_profile::from_counts(mirror.counts);
    balls_placed_ += rounds * k_;
    rounds_run_ += rounds;
    messages_ += rounds * d_;
}

void kd_choice_level_process::run_duplicate_round_tail(dense_mirror& mirror,
                                                       std::uint64_t j,
                                                       std::uint64_t probe,
                                                       std::uint64_t dup_at) {
    // Rare at large n (probability ~ d^2/2n per round): rebuild the
    // distinct-probe list from the fast prefix and finish the round with
    // the generic multiplicity-rule selection. RNG order is unchanged.
    distinct_.clear();
    for (std::uint64_t t = 0; t < j; ++t) {
        distinct_.push_back({fast_levels_[t], 1});
    }
    ++distinct_[static_cast<std::size_t>(dup_at)].multiplicity;
    for (++probe; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto seen = static_cast<std::uint64_t>(distinct_.size());
        if (v < seen) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const std::uint64_t level = mirror.level_of_rank(v - seen);
            --mirror.counts[level];
            distinct_.push_back({level, 1});
        }
    }

    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const auto& dp = distinct_[t];
        for (std::uint32_t occurrence = 1; occurrence <= dp.multiplicity;
             ++occurrence) {
            slots_.push_back(slot{dp.level + occurrence,
                                  static_cast<std::uint64_t>(gen_()), t});
        }
    }
    count_kept();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const std::uint64_t level = distinct_[t].level + kept_per_probe_[t];
        ++mirror.counts[level];
        mirror.top = std::max(mirror.top, level);
    }
}

void kd_choice_level_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    if (balls == 0) {
        return;
    }
    run_rounds_fast(balls / k_);
}

single_choice_level_process::single_choice_level_process(std::uint64_t n,
                                                         std::uint64_t seed)
    : single_choice_level_process(level_profile(n), seed) {}

single_choice_level_process::single_choice_level_process(
    level_profile initial, std::uint64_t seed)
    : profile_(std::move(initial)), gen_(seed), probe_draws_(profile_.n()) {}

void single_choice_level_process::run_balls(std::uint64_t balls) {
    if (balls == 0) {
        return;
    }
    dense_mirror mirror(profile_);
    for (std::uint64_t ball = 0; ball < balls; ++ball) {
        mirror.ensure_headroom(1);
        while (mirror.counts[mirror.base] == 0) {
            ++mirror.base; // single choice never inserts below its probe
        }
        const std::uint64_t level =
            mirror.level_of_rank(probe_draws_.next(gen_));
        --mirror.counts[level];
        ++mirror.counts[level + 1];
        mirror.top = std::max(mirror.top, level + 1);
    }
    profile_ = level_profile::from_counts(mirror.counts);
    balls_placed_ += balls;
}

d_choice_level_process::d_choice_level_process(std::uint64_t n,
                                               std::uint64_t d,
                                               std::uint64_t seed)
    : d_choice_level_process(level_profile(n), d, seed) {}

d_choice_level_process::d_choice_level_process(level_profile initial,
                                               std::uint64_t d,
                                               std::uint64_t seed)
    : profile_(std::move(initial)), d_(d), gen_(seed),
      probe_draws_(profile_.n()) {
    KD_EXPECTS(d >= 1);
    KD_EXPECTS(d <= profile_.n());
}

void d_choice_level_process::run_balls(std::uint64_t balls) {
    if (balls == 0) {
        return;
    }
    dense_mirror mirror(profile_);
    for (std::uint64_t ball = 0; ball < balls; ++ball) {
        mirror.ensure_headroom(1);
        while (mirror.counts[mirror.base] == 0) {
            ++mirror.base;
        }
        // Least loaded of d probes: only the minimum level matters, and any
        // duplicate probes cannot change it, so d independent level draws
        // are exact (no extraction between them). The early exit at level 0
        // keeps the draw count identical to the reference per-bin process.
        std::uint64_t best = mirror.level_of_rank(probe_draws_.next(gen_));
        for (std::uint64_t probe = 1; probe < d_ && best > 0; ++probe) {
            best = std::min(best,
                            mirror.level_of_rank(probe_draws_.next(gen_)));
        }
        --mirror.counts[best];
        ++mirror.counts[best + 1];
        mirror.top = std::max(mirror.top, best + 1);
    }
    profile_ = level_profile::from_counts(mirror.counts);
    balls_placed_ += balls;
}

} // namespace kdc::core
