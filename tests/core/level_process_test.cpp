// Distributional-equivalence suite for the level-compressed kernels: the
// level processes must be indistinguishable from their per-bin references —
// exactly (chi-square against core/exact enumeration at tiny n) and
// statistically (two-sample KS on max load / empty bins at n = 10^4).
#include "core/level_process.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "core/exact.hpp"
#include "core/process.hpp"
#include "core/runner.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::d_choice_level_process;
using kdc::core::d_choice_process;
using kdc::core::kd_choice_level_process;
using kdc::core::kd_choice_process;
using kdc::core::level_profile;
using kdc::core::single_choice_level_process;
using kdc::core::single_choice_process;

TEST(KdChoiceLevelProcess, ContractChecks) {
    EXPECT_THROW(kd_choice_level_process(10, 0, 2, 1),
                 kdc::contract_violation);
    EXPECT_THROW(kd_choice_level_process(10, 2, 2, 1),
                 kdc::contract_violation);
    EXPECT_THROW(kd_choice_level_process(3, 2, 4, 1),
                 kdc::contract_violation);
    kd_choice_level_process process(10, 2, 4, 1);
    EXPECT_THROW(process.run_balls(3), kdc::contract_violation);
}

TEST(KdChoiceLevelProcess, CountsBallsRoundsAndMessages) {
    kd_choice_level_process process(64, 3, 7, 5);
    process.run_balls(30);
    EXPECT_EQ(process.balls_placed(), 30u);
    EXPECT_EQ(process.rounds_run(), 10u);
    EXPECT_EQ(process.messages(), 70u);
    EXPECT_EQ(process.n(), 64u);
    EXPECT_EQ(process.k(), 3u);
    EXPECT_EQ(process.d(), 7u);
    EXPECT_EQ(process.profile().total_balls(), 30u);
    EXPECT_EQ(process.profile().remaining_bins(), 64u);
}

TEST(KdChoiceLevelProcess, SnapshotResumeCountsOnlyNewActivity) {
    auto initial = level_profile::from_loads({5, 5, 0, 0});
    kd_choice_level_process process(std::move(initial), 1, 2, 9);
    EXPECT_EQ(process.balls_placed(), 0u);
    process.run_balls(4);
    EXPECT_EQ(process.balls_placed(), 4u);
    EXPECT_EQ(process.profile().total_balls(), 14u);
}

TEST(KdChoiceLevelProcess, MovedProcessKeepsWorkingIndependently) {
    // The batched probe sampler is plain state (no pointer back into the
    // process), so the compiler-generated move must yield a process that
    // draws from its OWN generator — vector storage and non-elided returns
    // are safe.
    kd_choice_level_process original(64, 2, 4, 5);
    original.run_balls(10);
    kd_choice_level_process moved = std::move(original);
    moved.run_balls(10);
    EXPECT_EQ(moved.balls_placed(), 20u);
    EXPECT_EQ(moved.profile().total_balls(), 20u);
    EXPECT_EQ(moved.profile().remaining_bins(), 64u);

    std::vector<kd_choice_level_process> stored;
    stored.push_back(kd_choice_level_process(16, 1, 2, 9));
    stored.push_back(kd_choice_level_process(16, 1, 2, 10)); // may realloc
    stored[0].run_balls(4);
    EXPECT_EQ(stored[0].balls_placed(), 4u);
    EXPECT_EQ(stored[0].profile().total_balls(), 4u);
}

TEST(KdChoiceLevelProcess, ExactSmallInstanceDistributionsMatch) {
    // Mirror of exact_test's ExactVsSimulation, but for the level kernel:
    // the collision simulation plus slot selection must reproduce the exact
    // max-load law of the process definition.
    for (const auto& [n, k, d] :
         std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t>>{
             {2, 1, 2}, {4, 1, 2}, {4, 2, 3}, {6, 2, 3}}) {
        const auto exact = kdc::core::exact_max_load(n, k, d);
        const auto max_value = exact.rbegin()->first;

        std::vector<std::uint64_t> observed(max_value + 1, 0);
        constexpr int trials = 20000;
        for (int t = 0; t < trials; ++t) {
            kd_choice_level_process process(
                n, k, d, 20000 + static_cast<std::uint64_t>(t) * 13 +
                             n * 1000 + d);
            process.run_balls(n);
            const auto max = process.profile().metrics().max_load;
            ASSERT_LE(max, max_value);
            ++observed[max];
        }

        std::vector<double> expected(max_value + 1, 0.0);
        for (const auto& [v, p] : exact) {
            expected[v] = p;
        }
        const auto result = kdc::stats::chi_square_gof(observed, expected);
        EXPECT_GT(result.p_value, 1e-4)
            << "n=" << n << " k=" << k << " d=" << d
            << " chi2=" << result.statistic;
    }
}

/// Runs `reps` repetitions of `process_factory(seed)` for m balls and
/// returns the per-rep (max_load, empty_bins) samples as doubles.
template <typename Factory>
std::pair<std::vector<double>, std::vector<double>>
collect_samples(Factory factory, std::uint64_t balls, int reps,
                std::uint64_t seed_base) {
    std::vector<double> max_loads;
    std::vector<double> empty_bins;
    max_loads.reserve(static_cast<std::size_t>(reps));
    empty_bins.reserve(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
        auto process =
            factory(seed_base + static_cast<std::uint64_t>(rep) * 101);
        process.run_balls(balls);
        const auto metrics = kdc::core::observed_load_metrics(process);
        max_loads.push_back(static_cast<double>(metrics.max_load));
        empty_bins.push_back(static_cast<double>(metrics.empty_bins));
    }
    return {std::move(max_loads), std::move(empty_bins)};
}

TEST(KdChoiceLevelProcess, KsAgreementWithPerBinKernelAtTenThousandBins) {
    constexpr std::uint64_t n = 10'000;
    constexpr int reps = 120;
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{{1, 2},
                                                              {2, 4},
                                                              {8, 16}}) {
        const std::uint64_t balls = n - (n % k);
        auto [perbin_max, perbin_empty] = collect_samples(
            [&](std::uint64_t s) { return kd_choice_process(n, k, d, s); },
            balls, reps, 500);
        auto [level_max, level_empty] = collect_samples(
            [&](std::uint64_t s) {
                return kd_choice_level_process(n, k, d, s);
            },
            balls, reps, 77'000);
        const auto ks_max =
            kdc::stats::ks_two_sample(perbin_max, level_max);
        EXPECT_GT(ks_max.p_value, 1e-3)
            << "max load mismatch at k=" << k << " d=" << d
            << " D=" << ks_max.statistic;
        const auto ks_empty =
            kdc::stats::ks_two_sample(perbin_empty, level_empty);
        EXPECT_GT(ks_empty.p_value, 1e-3)
            << "empty bins mismatch at k=" << k << " d=" << d
            << " D=" << ks_empty.statistic;
    }
}

TEST(KdChoiceLevelProcess, HeavyLoadGapAgreesWithPerBinKernel) {
    // The regime the level kernel exists for: m = 16n. Compare the mean gap
    // across repetitions via KS on the per-rep gaps.
    constexpr std::uint64_t n = 2'048;
    constexpr std::uint64_t balls = 16 * n;
    constexpr int reps = 80;
    auto gaps = [&](auto factory, std::uint64_t seed_base) {
        std::vector<double> out;
        for (int rep = 0; rep < reps; ++rep) {
            auto process =
                factory(seed_base + static_cast<std::uint64_t>(rep));
            process.run_balls(balls);
            out.push_back(kdc::core::observed_load_metrics(process).gap);
        }
        return out;
    };
    const auto perbin = gaps(
        [&](std::uint64_t s) { return kd_choice_process(n, 2, 4, s); }, 31);
    const auto level = gaps(
        [&](std::uint64_t s) { return kd_choice_level_process(n, 2, 4, s); },
        9'031);
    const auto ks = kdc::stats::ks_two_sample(perbin, level);
    EXPECT_GT(ks.p_value, 1e-3) << "D=" << ks.statistic;
}

TEST(SingleChoiceLevelProcess, KsAgreementWithPerBinKernel) {
    constexpr std::uint64_t n = 10'000;
    constexpr int reps = 120;
    auto [perbin_max, perbin_empty] = collect_samples(
        [&](std::uint64_t s) { return single_choice_process(n, s); }, n,
        reps, 1'200);
    auto [level_max, level_empty] = collect_samples(
        [&](std::uint64_t s) { return single_choice_level_process(n, s); },
        n, reps, 88'200);
    EXPECT_GT(kdc::stats::ks_two_sample(perbin_max, level_max).p_value,
              1e-3);
    EXPECT_GT(kdc::stats::ks_two_sample(perbin_empty, level_empty).p_value,
              1e-3);
}

TEST(DChoiceLevelProcess, KsAgreementWithPerBinKernel) {
    constexpr std::uint64_t n = 10'000;
    constexpr int reps = 120;
    for (const std::uint64_t d : {2ULL, 4ULL}) {
        auto [perbin_max, perbin_empty] = collect_samples(
            [&](std::uint64_t s) { return d_choice_process(n, d, s); }, n,
            reps, 3'400);
        auto [level_max, level_empty] = collect_samples(
            [&](std::uint64_t s) { return d_choice_level_process(n, d, s); },
            n, reps, 91'400);
        EXPECT_GT(kdc::stats::ks_two_sample(perbin_max, level_max).p_value,
                  1e-3)
            << "d=" << d;
        EXPECT_GT(
            kdc::stats::ks_two_sample(perbin_empty, level_empty).p_value,
            1e-3)
            << "d=" << d;
    }
}

TEST(DChoiceLevelProcess, CountsAndContracts) {
    d_choice_level_process process(32, 3, 7);
    process.run_balls(10);
    EXPECT_EQ(process.balls_placed(), 10u);
    EXPECT_EQ(process.messages(), 30u);
    EXPECT_EQ(process.profile().total_balls(), 10u);
    EXPECT_THROW(d_choice_level_process(2, 3, 1), kdc::contract_violation);
}

TEST(SingleChoiceLevelProcess, Counts) {
    single_choice_level_process process(32, 7);
    process.run_balls(100);
    EXPECT_EQ(process.balls_placed(), 100u);
    EXPECT_EQ(process.messages(), 100u);
    EXPECT_EQ(process.profile().total_balls(), 100u);
    EXPECT_EQ(process.profile().remaining_bins(), 32u);
}

TEST(LevelKernel, BillionBinSmoke) {
    // O(max-load) state means a billion-bin process constructs instantly
    // and runs rounds without ever touching O(n) memory.
    constexpr std::uint64_t n = 1'000'000'000ULL;
    kd_choice_level_process process(n, 2, 4, 42);
    process.run_balls(2'000);
    EXPECT_EQ(process.balls_placed(), 2'000u);
    EXPECT_EQ(process.n(), n);
    EXPECT_EQ(process.profile().remaining_bins(), n);
    EXPECT_EQ(process.profile().total_balls(), 2'000u);
    // 2000 balls into 1e9 bins: max load stays tiny, so state stays tiny.
    EXPECT_LE(process.profile().max_level(), 4u);
    EXPECT_LT(process.profile().level_capacity(), 64u);
}

TEST(Runner, LevelKernelExperimentsAggregateLikePerBin) {
    // Same statistics shape through the runner path, selected by kernel.
    const kdc::core::experiment_config config{
        .balls = 0, .reps = 5, .seed = 17};
    const auto level = kdc::core::run_kd_experiment(
        512, 2, 4, config, kdc::core::kernel_kind::level);
    EXPECT_EQ(level.reps.size(), 5u);
    for (const auto& rep : level.reps) {
        EXPECT_EQ(rep.messages, (512 / 2) * 4u);
        EXPECT_GE(rep.max_load, 1u);
    }
    const auto single = kdc::core::run_single_choice_experiment(
        256, config, kdc::core::kernel_kind::level);
    EXPECT_EQ(single.reps.size(), 5u);
    const auto d_choice = kdc::core::run_d_choice_experiment(
        256, 2, config, kdc::core::kernel_kind::level);
    EXPECT_EQ(d_choice.reps.size(), 5u);
}

} // namespace
