// Dense histogram over small non-negative integers. Bin loads, ball heights
// and max-load observations all live in a tiny integer range, so a vector
// indexed by value is both the fastest and the most precise representation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "support/contracts.hpp"

namespace kdc::stats {

class integer_histogram {
public:
    /// Adds `weight` observations of `value`.
    void add(std::uint64_t value, std::uint64_t weight = 1) {
        if (value >= counts_.size()) {
            counts_.resize(value + 1, 0);
        }
        counts_[value] += weight;
        total_ += weight;
    }

    /// Count of observations equal to `value` (0 if never seen).
    [[nodiscard]] std::uint64_t count(std::uint64_t value) const noexcept {
        return value < counts_.size() ? counts_[value] : 0;
    }

    /// Count of observations >= `value` (the paper's nu_y when applied to
    /// bin loads).
    [[nodiscard]] std::uint64_t count_at_least(std::uint64_t value) const noexcept {
        std::uint64_t sum = 0;
        for (std::uint64_t v = value; v < counts_.size(); ++v) {
            sum += counts_[v];
        }
        return sum;
    }

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Largest observed value. Requires a non-empty histogram.
    [[nodiscard]] std::uint64_t max_value() const {
        KD_EXPECTS(total_ > 0);
        for (std::uint64_t v = counts_.size(); v-- > 0;) {
            if (counts_[v] > 0) {
                return v;
            }
        }
        KD_ASSERT_MSG(false, "non-empty histogram without a max");
        return 0;
    }

    /// Smallest observed value. Requires a non-empty histogram.
    [[nodiscard]] std::uint64_t min_value() const {
        KD_EXPECTS(total_ > 0);
        for (std::uint64_t v = 0; v < counts_.size(); ++v) {
            if (counts_[v] > 0) {
                return v;
            }
        }
        KD_ASSERT_MSG(false, "non-empty histogram without a min");
        return 0;
    }

    [[nodiscard]] double mean() const {
        KD_EXPECTS(total_ > 0);
        double sum = 0.0;
        for (std::uint64_t v = 0; v < counts_.size(); ++v) {
            sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
        }
        return sum / static_cast<double>(total_);
    }

    /// Nearest-rank quantile: the value at rank max(1, ceil(p * total)).
    [[nodiscard]] std::uint64_t quantile(double p) const {
        KD_EXPECTS(total_ > 0);
        KD_EXPECTS(p >= 0.0 && p <= 1.0);
        const auto rank = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(p * static_cast<double>(total_))));
        std::uint64_t cumulative = 0;
        for (std::uint64_t v = 0; v < counts_.size(); ++v) {
            cumulative += counts_[v];
            if (cumulative >= rank) {
                return v;
            }
        }
        return max_value();
    }

    void merge(const integer_histogram& other) {
        if (other.counts_.size() > counts_.size()) {
            counts_.resize(other.counts_.size(), 0);
        }
        for (std::uint64_t v = 0; v < other.counts_.size(); ++v) {
            counts_[v] += other.counts_[v];
        }
        total_ += other.total_;
    }

    /// Distinct observed values in increasing order, as "a, b, c" — the
    /// format of the cells in Table 1 of the paper ("7, 8, 9" etc.).
    [[nodiscard]] std::string support_string() const;

    /// Raw counts, indexed by value.
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
        return counts_;
    }

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace kdc::stats
