#include "core/baselines.hpp"

#include <algorithm>

#include "rng/sampling.hpp"
#include "rng/uniform.hpp"

namespace kdc::core {

one_plus_beta_process::one_plus_beta_process(std::uint64_t n, double beta,
                                             std::uint64_t seed)
    : loads_(n, 0), beta_(beta), gen_(seed) {
    KD_EXPECTS(n >= 1);
    KD_EXPECTS_MSG(beta >= 0.0 && beta <= 1.0, "beta must lie in [0, 1]");
}

void one_plus_beta_process::run_balls(std::uint64_t balls) {
    const std::uint64_t n = loads_.size();
    for (std::uint64_t i = 0; i < balls; ++i) {
        auto chosen = static_cast<std::uint32_t>(rng::uniform_below(gen_, n));
        ++messages_;
        if (rng::bernoulli(gen_, beta_)) {
            const auto second =
                static_cast<std::uint32_t>(rng::uniform_below(gen_, n));
            ++messages_;
            if (loads_[second] < loads_[chosen] ||
                (loads_[second] == loads_[chosen] &&
                 rng::bernoulli(gen_, 0.5))) {
                chosen = second;
            }
        }
        loads_[chosen] += 1;
    }
    balls_placed_ += balls;
}

one_plus_beta_level_process::one_plus_beta_level_process(std::uint64_t n,
                                                         double beta,
                                                         std::uint64_t seed)
    : one_plus_beta_level_process(level_profile(n), beta, seed) {}

one_plus_beta_level_process::one_plus_beta_level_process(level_profile initial,
                                                         double beta,
                                                         std::uint64_t seed)
    : profile_(std::move(initial)), beta_(beta), gen_(seed),
      probe_draws_(profile_.n()) {
    KD_EXPECTS(profile_.n() >= 1);
    KD_EXPECTS_MSG(beta >= 0.0 && beta <= 1.0, "beta must lie in [0, 1]");
}

void one_plus_beta_level_process::run_balls(std::uint64_t balls) {
    for (std::uint64_t ball = 0; ball < balls; ++ball) {
        profile_.ensure_levels(profile_.max_level() + 2);
        const std::uint64_t l1 =
            profile_.level_at_rank(probe_draws_.next(gen_));
        ++messages_;
        if (!rng::bernoulli(gen_, beta_)) {
            profile_.move_bin(l1, l1 + 1);
            continue;
        }
        ++messages_;
        // Second probe, with replacement: extract the first bin, then one
        // draw v in [0, n) decides duplicate (v == 0, probability exactly
        // 1/n) vs a fresh bin among the remaining n - 1 (rank v - 1).
        profile_.extract_bin(l1);
        const std::uint64_t v = probe_draws_.next(gen_);
        if (v == 0) {
            profile_.insert_bin(l1 + 1); // both probes hit the same bin
        } else {
            const std::uint64_t l2 = profile_.level_at_rank(v - 1);
            if (l2 < l1) {
                profile_.move_bin(l2, l2 + 1);
                profile_.insert_bin(l1);
            } else {
                // l1 <= l2: the first bin wins (on a tie either bin gives
                // the same profile transition, so no coin is needed).
                profile_.insert_bin(l1 + 1);
            }
        }
    }
    balls_placed_ += balls;
}

batched_greedy_process::batched_greedy_process(std::uint64_t n,
                                               std::uint64_t k,
                                               std::uint64_t d,
                                               std::uint64_t seed)
    : batched_greedy_process(load_vector(n, 0), k, d, seed) {}

batched_greedy_process::batched_greedy_process(load_vector initial_loads,
                                               std::uint64_t k,
                                               std::uint64_t d,
                                               std::uint64_t seed)
    : loads_(std::move(initial_loads)), k_(k), d_(d), gen_(seed) {
    KD_EXPECTS_MSG(k >= 1 && k < d && d <= loads_.size(),
                   "requires 1 <= k < d <= n");
    sample_buffer_.resize(d);
}

void batched_greedy_process::run_round() {
    rng::sample_with_replacement(gen_, loads_.size(),
                                 std::span<std::uint32_t>(sample_buffer_));
    run_round_with_samples(sample_buffer_);
}

void batched_greedy_process::run_round_with_samples(
    std::span<const std::uint32_t> samples) {
    KD_EXPECTS_MSG(samples.size() == d_, "a round probes exactly d bins");

    distinct_buffer_.assign(samples.begin(), samples.end());
    std::sort(distinct_buffer_.begin(), distinct_buffer_.end());
    distinct_buffer_.erase(
        std::unique(distinct_buffer_.begin(), distinct_buffer_.end()),
        distinct_buffer_.end());

    // Section 7 policy: every ball goes to the currently least loaded
    // distinct candidate, no multiplicity cap. Ties broken uniformly via
    // reservoir sampling over the minima.
    for (std::uint64_t ball = 0; ball < k_; ++ball) {
        std::uint32_t best = distinct_buffer_.front();
        bin_load best_load = loads_[best];
        std::uint64_t ties = 1;
        for (std::size_t i = 1; i < distinct_buffer_.size(); ++i) {
            const std::uint32_t candidate = distinct_buffer_[i];
            const bin_load load = loads_[candidate];
            if (load < best_load) {
                best = candidate;
                best_load = load;
                ties = 1;
            } else if (load == best_load) {
                ++ties;
                if (rng::uniform_below(gen_, ties) == 0) {
                    best = candidate;
                }
            }
        }
        loads_[best] += 1;
    }

    balls_placed_ += k_;
    messages_ += d_;
}

void batched_greedy_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    for (std::uint64_t placed = 0; placed < balls; placed += k_) {
        run_round();
    }
}

adaptive_threshold_process::adaptive_threshold_process(std::uint64_t n,
                                                       bin_load threshold,
                                                       std::uint32_t max_probes,
                                                       std::uint64_t seed)
    : loads_(n, 0), threshold_(threshold), max_probes_(max_probes),
      gen_(seed) {
    KD_EXPECTS(n >= 1);
    KD_EXPECTS_MSG(max_probes >= 1, "a ball must probe at least once");
}

void adaptive_threshold_process::run_balls(std::uint64_t balls) {
    const std::uint64_t n = loads_.size();
    for (std::uint64_t i = 0; i < balls; ++i) {
        std::uint32_t best = 0;
        bin_load best_load = 0;
        for (std::uint32_t probe = 0; probe < max_probes_; ++probe) {
            const auto candidate =
                static_cast<std::uint32_t>(rng::uniform_below(gen_, n));
            ++messages_;
            if (probe == 0 || loads_[candidate] < best_load) {
                best = candidate;
                best_load = loads_[candidate];
            }
            if (best_load < threshold_) {
                break;
            }
        }
        loads_[best] += 1;
    }
    balls_placed_ += balls;
}

} // namespace kdc::core
