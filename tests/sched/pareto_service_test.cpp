#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::sched::probe_strategy;
using kdc::sched::scheduler_config;
using kdc::sched::service_model;
using kdc::sched::simulate;

scheduler_config pareto_config() {
    scheduler_config config;
    config.workers = 64;
    config.jobs = 2000;
    config.tasks_per_job = 4;
    config.probes = 8;
    config.arrival_rate = 8.0; // utilization 0.5
    config.mean_service = 1.0;
    config.service = service_model::pareto;
    config.pareto_shape = 2.0;
    config.strategy = probe_strategy::batch_kd_choice;
    config.seed = 21;
    return config;
}

TEST(ParetoService, ValidatesShape) {
    auto config = pareto_config();
    config.pareto_shape = 1.0;
    EXPECT_THROW(config.validate(), kdc::contract_violation);
    config.pareto_shape = 1.5;
    EXPECT_NO_THROW(config.validate());
}

TEST(ParetoService, AllJobsComplete) {
    const auto result = simulate(pareto_config());
    EXPECT_EQ(result.tasks_completed, 2000u * 4u);
    EXPECT_EQ(result.response_time.count, 2000u);
}

TEST(ParetoService, HeavierTailThanExponential) {
    // Same mean service and load: Pareto(2) produces a far heavier response
    // tail (p99 / median ratio) than exponential.
    auto pareto = pareto_config();
    const auto pareto_result = simulate(pareto);

    auto expo = pareto_config();
    expo.service = service_model::exponential;
    const auto expo_result = simulate(expo);

    const double pareto_tail =
        pareto_result.response_time.p99 / pareto_result.response_time.median;
    const double expo_tail =
        expo_result.response_time.p99 / expo_result.response_time.median;
    EXPECT_GT(pareto_tail, expo_tail);
}

TEST(ParetoService, SharedProbingStillBeatsRandom) {
    // The paper's scheduling claim must survive heavy-tailed service.
    auto kd = pareto_config();
    const auto kd_result = simulate(kd);

    auto random = pareto_config();
    random.strategy = probe_strategy::random_worker;
    const auto random_result = simulate(random);

    EXPECT_LT(kd_result.response_time.mean, random_result.response_time.mean);
}

TEST(ParetoService, MinimumServiceRespectsScale) {
    // Pareto scaled to mean 1 with shape 2 has x_min = 0.5: no task can be
    // faster than that, so no response can either.
    auto config = pareto_config();
    config.jobs = 500;
    const auto result = simulate(config);
    EXPECT_GE(result.response_time.min, 0.5 - 1e-9);
}

} // namespace
