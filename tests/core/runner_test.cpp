#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "theory/bounds.hpp"

namespace {

using kdc::core::experiment_config;
using kdc::core::run_d_choice_experiment;
using kdc::core::run_experiment;
using kdc::core::run_kd_experiment;
using kdc::core::run_single_choice_experiment;

TEST(Runner, RunsRequestedRepetitions) {
    const auto result =
        run_kd_experiment(128, 2, 4, {.balls = 128, .reps = 7, .seed = 1});
    EXPECT_EQ(result.reps.size(), 7u);
    EXPECT_EQ(result.max_load_stats.count(), 7u);
    EXPECT_EQ(result.max_load_values.total(), 7u);
}

TEST(Runner, ZeroBallsDefaultsToWholeRoundsWhenNotDivisible) {
    // Regression: n = 100, k = 3 used to pass balls = 100 straight to
    // run_balls, which rejects partial rounds (100 % 3 != 0). The default
    // must round down to 99 balls (33 whole rounds).
    const auto result =
        run_kd_experiment(100, 3, 7, {.balls = 0, .reps = 3, .seed = 1});
    ASSERT_EQ(result.reps.size(), 3u);
    for (const auto& rep : result.reps) {
        // 99 balls in 100 bins: mean load 0.99, so gap = max - 0.99.
        EXPECT_DOUBLE_EQ(rep.gap, static_cast<double>(rep.max_load) - 0.99);
    }
}

TEST(Runner, WholeRoundsBallsRoundsDown) {
    EXPECT_EQ(kdc::core::whole_rounds_balls(100, 3), 99u);
    EXPECT_EQ(kdc::core::whole_rounds_balls(96, 3), 96u);
    EXPECT_EQ(kdc::core::whole_rounds_balls(5, 5), 5u);
}

TEST(Runner, WholeRoundsBallsRejectsFewerBinsThanK) {
    EXPECT_THROW((void)kdc::core::whole_rounds_balls(2, 3),
                 kdc::contract_violation);
}

TEST(Runner, ZeroBallsDefaultsToN) {
    const auto result =
        run_kd_experiment(128, 2, 4, {.balls = 0, .reps = 2, .seed = 1});
    // n balls -> mean load exactly 1, so gap = max - 1.
    for (const auto& rep : result.reps) {
        EXPECT_DOUBLE_EQ(rep.gap,
                         static_cast<double>(rep.max_load) - 1.0);
    }
}

TEST(Runner, MessagesMatchTheoryOracle) {
    const auto result =
        run_kd_experiment(120, 3, 5, {.balls = 120, .reps = 3, .seed = 2});
    for (const auto& rep : result.reps) {
        EXPECT_EQ(rep.messages, kdc::theory::message_cost(120, 3, 5));
    }
}

TEST(Runner, DeterministicUnderMasterSeed) {
    const auto a =
        run_kd_experiment(256, 2, 4, {.balls = 256, .reps = 5, .seed = 42});
    const auto b =
        run_kd_experiment(256, 2, 4, {.balls = 256, .reps = 5, .seed = 42});
    ASSERT_EQ(a.reps.size(), b.reps.size());
    for (std::size_t i = 0; i < a.reps.size(); ++i) {
        EXPECT_EQ(a.reps[i].max_load, b.reps[i].max_load);
    }
}

TEST(Runner, RepetitionsAreIndependent) {
    const auto result =
        run_kd_experiment(512, 1, 2, {.balls = 512, .reps = 20, .seed = 3});
    // With 20 independent reps of (1,2) at n=512 the max load should not be
    // identical in every rep AND equal to a degenerate value like 0/1.
    EXPECT_GE(result.max_load_values.min_value(), 2u);
}

TEST(Runner, MaxLoadSetFormatsLikeTable1) {
    const auto result =
        run_kd_experiment(512, 1, 2, {.balls = 512, .reps = 10, .seed = 4});
    const std::string set = result.max_load_set();
    EXPECT_FALSE(set.empty());
    // Must be "a" or "a, b" style: digits, commas, spaces only.
    EXPECT_EQ(set.find_first_not_of("0123456789, "), std::string::npos);
}

TEST(Runner, SingleChoiceConvenience) {
    const auto result =
        run_single_choice_experiment(256, {.balls = 256, .reps = 4, .seed = 5});
    EXPECT_EQ(result.reps.size(), 4u);
    for (const auto& rep : result.reps) {
        EXPECT_EQ(rep.messages, 256u);
    }
}

TEST(Runner, DChoiceConvenience) {
    const auto result =
        run_d_choice_experiment(256, 3, {.balls = 256, .reps = 4, .seed = 6});
    for (const auto& rep : result.reps) {
        EXPECT_EQ(rep.messages, 256u * 3u);
    }
}

TEST(Runner, GenericOverCustomFactory) {
    const auto result = run_experiment(
        {.balls = 100, .reps = 3, .seed = 9}, [](std::uint64_t seed) {
            return kdc::core::single_choice_process(50, seed);
        });
    EXPECT_EQ(result.reps.size(), 3u);
}

TEST(Runner, InvalidConfigViolatesContract) {
    EXPECT_THROW((void)run_kd_experiment(
                     128, 2, 4, {.balls = 128, .reps = 0, .seed = 1}),
                 kdc::contract_violation);
}

TEST(Runner, KernelFromCliParsesBothKernelsAndRejectsGarbage) {
    auto parse_kernel = [](const char* value) {
        kdc::arg_parser args;
        args.add_kernel_option();
        const std::string arg = std::string("--kernel=") + value;
        const char* argv[] = {"prog", arg.c_str()};
        EXPECT_TRUE(args.parse(2, argv));
        return kdc::core::kernel_from_cli(args);
    };
    EXPECT_EQ(parse_kernel("perbin"), kdc::core::kernel_kind::per_bin);
    EXPECT_EQ(parse_kernel("level"), kdc::core::kernel_kind::level);
    EXPECT_THROW((void)parse_kernel("lvl"), kdc::cli_error);

    // Default (option absent) is the per-bin reference kernel.
    kdc::arg_parser args;
    args.add_kernel_option();
    const char* argv[] = {"prog"};
    EXPECT_TRUE(args.parse(1, argv));
    EXPECT_EQ(kdc::core::kernel_from_cli(args),
              kdc::core::kernel_kind::per_bin);
    EXPECT_STREQ(kdc::core::kernel_name(kdc::core::kernel_kind::level),
                 "level");
    EXPECT_STREQ(kdc::core::kernel_name(kdc::core::kernel_kind::per_bin),
                 "perbin");
}

TEST(Runner, GapStatsAggregates) {
    const auto result =
        run_kd_experiment(256, 2, 4, {.balls = 2560, .reps = 5, .seed = 10});
    EXPECT_EQ(result.gap_stats.count(), 5u);
    EXPECT_GE(result.gap_stats.min(), 0.0);
}

} // namespace
