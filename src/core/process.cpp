#include "core/process.hpp"

#include <algorithm>

#include "rng/uniform.hpp"

namespace kdc::core {

kd_choice_process::kd_choice_process(std::uint64_t n, std::uint64_t k,
                                     std::uint64_t d, std::uint64_t seed)
    : kd_choice_process(load_vector(n, 0), k, d, seed) {}

kd_choice_process::kd_choice_process(load_vector initial_loads,
                                     std::uint64_t k, std::uint64_t d,
                                     std::uint64_t seed)
    : loads_(std::move(initial_loads)), k_(k), d_(d), gen_(seed),
      probe_draws_(loads_.size()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= loads_.size(), "cannot probe more bins than exist");
    sample_buffer_.resize(d);
    // One up-front reserve per experiment: place_round's slot and
    // sorted-sample buffers never grow (at most d entries per round).
    scratch_.slots.reserve(d);
    scratch_.sorted_samples.reserve(d);
}

void kd_choice_process::run_round() {
    const std::span<std::uint32_t> samples(sample_buffer_);
    if (probe_mode_ == probe_mode::with_replacement) {
        for (auto& slot : samples) {
            slot = static_cast<std::uint32_t>(probe_draws_.next(gen_));
        }
    } else {
        rng::sample_without_replacement(gen_, loads_.size(), sample_scratch_,
                                        samples);
    }
    run_round_with_samples(samples);
}

void kd_choice_process::run_round_with_samples(
    std::span<const std::uint32_t> samples) {
    KD_EXPECTS_MSG(samples.size() == d_, "a round probes exactly d bins");
    place_round(loads_, samples, k_, gen_, scratch_,
                record_heights_ ? &height_log_ : nullptr);
    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void kd_choice_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    if (record_heights_) {
        // Every round appends exactly k entries; one up-front reserve
        // replaces the reallocation churn of the figure benches' long runs.
        height_log_.reserve(height_log_.size() + balls);
    }
    // The probe-mode branch and the sample span are loop-invariant: test the
    // mode once and run a tight per-round loop instead of re-deciding (and
    // rebuilding the span) every round as run_round() must.
    const std::uint64_t rounds = balls / k_;
    const std::uint64_t n = loads_.size();
    const std::span<std::uint32_t> samples(sample_buffer_);
    if (probe_mode_ == probe_mode::with_replacement) {
        // The probe step goes through the batched Lemire sampler: the bound
        // is n for the whole experiment, so every probe is a
        // pop-multiply-compare off a prefilled 256-word block instead of a
        // generator call (rng/sampling.hpp, batched_uniform).
        for (std::uint64_t round = 0; round < rounds; ++round) {
            for (auto& slot : samples) {
                slot = static_cast<std::uint32_t>(probe_draws_.next(gen_));
            }
            run_round_with_samples(samples);
        }
    } else {
        for (std::uint64_t round = 0; round < rounds; ++round) {
            rng::sample_without_replacement(gen_, n, sample_scratch_,
                                            samples);
            run_round_with_samples(samples);
        }
    }
}

single_choice_process::single_choice_process(std::uint64_t n,
                                             std::uint64_t seed)
    : loads_(n, 0), gen_(seed), probe_draws_(n) {
    KD_EXPECTS(n >= 1);
}

void single_choice_process::run_balls(std::uint64_t balls) {
    // batched_uniform consumes generator words exactly as repeated
    // uniform_below calls would, so this is the same process bit for bit.
    for (std::uint64_t i = 0; i < balls; ++i) {
        loads_[probe_draws_.next(gen_)] += 1;
    }
    balls_placed_ += balls;
}

d_choice_process::d_choice_process(std::uint64_t n, std::uint64_t d,
                                   std::uint64_t seed)
    : loads_(n, 0), d_(d), gen_(seed), probe_draws_(n) {
    KD_EXPECTS(d >= 1);
    KD_EXPECTS(d <= n);
}

void d_choice_process::run_balls(std::uint64_t balls) {
    for (std::uint64_t i = 0; i < balls; ++i) {
        // Least loaded of d probes; ties go to the first minimum seen, which
        // is uniform over tied bins because probe order is itself random.
        std::uint32_t best =
            static_cast<std::uint32_t>(probe_draws_.next(gen_));
        bin_load best_load = loads_[best];
        for (std::uint64_t probe = 1; probe < d_; ++probe) {
            const auto candidate =
                static_cast<std::uint32_t>(probe_draws_.next(gen_));
            if (loads_[candidate] < best_load) {
                best = candidate;
                best_load = loads_[candidate];
            }
        }
        loads_[best] += 1;
    }
    balls_placed_ += balls;
}

} // namespace kdc::core
