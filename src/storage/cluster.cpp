#include "storage/cluster.hpp"

#include <algorithm>

#include "core/round_kernel.hpp"
#include "rng/sampling.hpp"
#include "rng/uniform.hpp"

namespace kdc::storage {

const char* to_string(placement_policy policy) noexcept {
    switch (policy) {
    case placement_policy::kd_choice:
        return "(k,d)-choice";
    case placement_policy::per_replica_d_choice:
        return "per-replica-d-choice";
    case placement_policy::random:
        return "random";
    case placement_policy::batch_greedy:
        return "batch-greedy";
    }
    return "unknown";
}

void storage_config::validate() const {
    KD_EXPECTS(servers >= 1);
    KD_EXPECTS(replicas_per_file >= 1);
    KD_EXPECTS(probes >= 1);
    KD_EXPECTS(probes <= servers);
    if (policy == placement_policy::kd_choice ||
        policy == placement_policy::batch_greedy) {
        KD_EXPECTS_MSG(probes > replicas_per_file,
                       "batch policies need d > k candidates per file");
    }
}

storage_cluster::storage_cluster(const storage_config& config)
    : config_(config), loads_(config.servers, 0), gen_(config.seed) {
    config_.validate();
}

void storage_cluster::place_kd_choice(file_placement& out) {
    probe_buffer_.resize(config_.probes);
    rng::sample_with_replacement(gen_, config_.servers,
                                 std::span<std::uint32_t>(probe_buffer_));
    placement_messages_ += config_.probes;
    out.candidates = probe_buffer_;

    std::vector<core::placed_ball> placed;
    core::round_scratch scratch;
    core::place_round(loads_, probe_buffer_, config_.replicas_per_file, gen_,
                      scratch, &placed);
    out.replicas.reserve(placed.size());
    for (const auto& ball : placed) {
        out.replicas.push_back(ball.bin);
    }
}

void storage_cluster::place_per_replica(file_placement& out) {
    for (std::uint64_t r = 0; r < config_.replicas_per_file; ++r) {
        std::uint32_t best = 0;
        core::bin_load best_load = 0;
        for (std::uint64_t probe = 0; probe < config_.probes; ++probe) {
            const auto candidate = static_cast<std::uint32_t>(
                rng::uniform_below(gen_, config_.servers));
            ++placement_messages_;
            out.candidates.push_back(candidate);
            if (probe == 0 || loads_[candidate] < best_load) {
                best = candidate;
                best_load = loads_[candidate];
            }
        }
        loads_[best] += 1;
        out.replicas.push_back(best);
    }
}

void storage_cluster::place_random(file_placement& out) {
    for (std::uint64_t r = 0; r < config_.replicas_per_file; ++r) {
        const auto server = static_cast<std::uint32_t>(
            rng::uniform_below(gen_, config_.servers));
        ++placement_messages_; // the write itself still contacts the server
        out.candidates.push_back(server);
        loads_[server] += 1;
        out.replicas.push_back(server);
    }
}

void storage_cluster::place_batch_greedy(file_placement& out) {
    probe_buffer_.resize(config_.probes);
    rng::sample_with_replacement(gen_, config_.servers,
                                 std::span<std::uint32_t>(probe_buffer_));
    placement_messages_ += config_.probes;
    out.candidates = probe_buffer_;

    std::vector<std::uint32_t> distinct = probe_buffer_;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (std::uint64_t r = 0; r < config_.replicas_per_file; ++r) {
        std::uint32_t best = distinct.front();
        for (const auto candidate : distinct) {
            if (loads_[candidate] < loads_[best]) {
                best = candidate;
            }
        }
        loads_[best] += 1;
        out.replicas.push_back(best);
    }
}

std::uint64_t storage_cluster::place_file() {
    file_placement out;
    switch (config_.policy) {
    case placement_policy::kd_choice:
        place_kd_choice(out);
        break;
    case placement_policy::per_replica_d_choice:
        place_per_replica(out);
        break;
    case placement_policy::random:
        place_random(out);
        break;
    case placement_policy::batch_greedy:
        place_batch_greedy(out);
        break;
    }
    KD_ENSURES(out.replicas.size() == config_.replicas_per_file);
    placements_.push_back(std::move(out));
    return placements_.size() - 1;
}

void storage_cluster::place_files(std::uint64_t count) {
    placements_.reserve(placements_.size() + count);
    for (std::uint64_t i = 0; i < count; ++i) {
        (void)place_file();
    }
}

std::uint64_t storage_cluster::search_cost(std::uint64_t file) const {
    KD_EXPECTS(file < placements_.size());
    // The reader re-derives the candidate set (same hash) and probes it.
    return placements_[file].candidates.size();
}

double storage_cluster::estimate_availability(double fail_prob, bool need_all,
                                              std::uint32_t trials,
                                              std::uint64_t seed) const {
    const std::uint64_t min_alive =
        need_all ? config_.replicas_per_file : 1;
    return estimate_availability_erasure(fail_prob, min_alive, trials, seed);
}

double storage_cluster::estimate_availability_erasure(
    double fail_prob, std::uint64_t min_alive, std::uint32_t trials,
    std::uint64_t seed) const {
    KD_EXPECTS(fail_prob >= 0.0 && fail_prob <= 1.0);
    KD_EXPECTS(trials >= 1);
    KD_EXPECTS(min_alive >= 1 && min_alive <= config_.replicas_per_file);
    KD_EXPECTS_MSG(!placements_.empty(), "no files placed yet");

    rng::xoshiro256ss trial_gen(seed);
    std::vector<bool> down(config_.servers, false);
    std::uint64_t available = 0;
    std::uint64_t total = 0;

    for (std::uint32_t t = 0; t < trials; ++t) {
        for (std::uint64_t s = 0; s < config_.servers; ++s) {
            down[s] = rng::bernoulli(trial_gen, fail_prob);
        }
        for (const auto& placement : placements_) {
            std::uint64_t alive = 0;
            for (const auto server : placement.replicas) {
                alive += down[server] ? 0 : 1;
            }
            available += alive >= min_alive ? 1 : 0;
            ++total;
        }
    }
    return static_cast<double>(available) / static_cast<double>(total);
}

} // namespace kdc::storage
