// Tiny `--key=value` command-line parser for the example and bench binaries.
// Deliberately small: flags are `--name` (boolean) or `--name=value`; anything
// else is a positional argument. Unknown keys are an error so typos in sweep
// scripts fail fast instead of silently running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace kdc {

/// Thrown on malformed or unknown command-line arguments.
class cli_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class arg_parser {
public:
    /// Declares an option with a default value (also used for --help output).
    void add_option(std::string name, std::string default_value,
                    std::string help);

    /// Declares a boolean flag (false unless present).
    void add_flag(std::string name, std::string help);

    /// Declares the standard `--threads` option shared by the sweep
    /// binaries. The value sizes ONE work-stealing pool that all cells and
    /// repetitions of the binary's sweeps share (cross-cell parallelism,
    /// not just reps within one experiment); output is bit-identical at any
    /// thread count.
    void add_threads_option();

    /// Parsed `--threads` value; negative values are rejected with
    /// cli_error. The 0 sentinel ("use all hardware threads") is resolved by
    /// core::resolve_thread_count — the one place that semantic lives.
    [[nodiscard]] unsigned get_threads() const;

    /// Declares the standard `--kernel={perbin,level}` option: which
    /// simulation kernel backs the experiment's processes (per-bin loads vs
    /// level-compressed counts; see core/level_process.hpp). Parsed and
    /// validated by core::kernel_from_cli.
    void add_kernel_option();

    /// Declares the standard adaptive-precision options shared by the sweep
    /// binaries: `--adaptive` (switch the execution engine's stopping rule
    /// from fixed_reps to confidence_width), `--ci-width` (target 95% CI
    /// half-width of the monitored per-rep metric's mean), `--ci-rel` (the
    /// mean-scaled alternative: target half-width = ci-rel * |mean|,
    /// mutually exclusive with an explicit --ci-width), `--min-reps` and
    /// `--max-reps` (floor / cap on per-cell repetitions; --max-reps=0
    /// means "the cell's configured --reps").
    /// core::stopping_rule_from_cli assembles the rule and validates the
    /// cross-option constraints.
    void add_adaptive_options();

    /// Declares the standard snapshot options of the heavy benches:
    /// `--snapshot-out` (write the run's final level profile to a file)
    /// and `--resume` (start from a previously written profile instead of
    /// empty bins). core::run_snapshot_stage (core/snapshot_stage.hpp)
    /// consumes them.
    void add_snapshot_options();

    /// Declares `--inject-faults`: a deterministic fault plan
    /// ("site:action[@hit]" rules joined by ';' — see
    /// core/fault_injection.hpp and docs/robustness.md). The KDC_FAULTS
    /// environment variable overrides the option when set and non-empty.
    /// core::arm_faults_from_cli consumes it.
    void add_fault_options();

    /// Declares the standard `--scenario` option: one declarative string
    /// ("kd:n=1e6,k=2,d=4,kernel=auto") that overrides the binary's legacy
    /// flags key by key. Parsed and merged by core::scenario_from_cli
    /// (core/scenario.hpp), which documents the grammar.
    void add_scenario_option();

    /// True when the user explicitly supplied a value for `name` (as
    /// opposed to the declared default being in effect).
    [[nodiscard]] bool has_value(const std::string& name) const {
        return values_.find(name) != values_.end();
    }

    /// Parses argv. Throws cli_error on unknown/malformed options.
    /// Returns false if `--help` was requested (usage printed to stdout).
    [[nodiscard]] bool parse(int argc, const char* const* argv);

    [[nodiscard]] std::string get_string(const std::string& name) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name) const;

    /// Parses the option as a double. Rejects — with a cli_error naming the
    /// option, the offending text and what was expected — garbage
    /// ("--x=abc"), trailing junk ("--x=1.5abc"), out-of-range literals
    /// ("--x=1e999") and non-finite values ("--x=inf", "--x=nan"); no
    /// malformed value ever falls back to a silent default.
    [[nodiscard]] double get_double(const std::string& name) const;

    /// get_double plus a strict positivity check: zero and negative values
    /// are rejected with a cli_error saying the option must be > 0.
    [[nodiscard]] double get_positive_double(const std::string& name) const;

    [[nodiscard]] bool get_flag(const std::string& name) const;

    [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
        return positional_;
    }

    /// Renders usage text from the declared options.
    [[nodiscard]] std::string usage(const std::string& program) const;

private:
    struct option_spec {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::map<std::string, option_spec> specs_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace kdc
