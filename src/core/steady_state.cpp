#include "core/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/baselines.hpp"
#include "core/fault_injection.hpp"
#include "core/level_process.hpp"
#include "core/sharded_kernel.hpp"
#include "rng/splitmix64.hpp"
#include "support/cli.hpp"

namespace kdc::core {

namespace {

/// Decorrelates the pilot-simulation seed stream from the settle kernel's
/// (which consumes the caller's seed directly).
constexpr std::uint64_t pilot_salt = 0x9e3779b97f4a7c15ULL;

/// The index of the fullest level — where rounding-residual bins and balls
/// are absorbed, so corrections land in the profile's bulk, never its tail.
std::size_t fullest_level(const std::vector<std::uint64_t>& counts,
                          std::size_t min_level) {
    std::size_t best = min_level;
    for (std::size_t level = min_level; level < counts.size(); ++level) {
        if (counts[level] > counts[best]) {
            best = level;
        }
    }
    return best;
}

/// Expected bins per level of single-choice occupancy: n * Poisson(lambda)
/// pmf, computed in log space so heavy densities (lambda in the hundreds)
/// never underflow term by term.
std::vector<double> poisson_targets(std::uint64_t n, double lambda) {
    KD_EXPECTS(lambda > 0.0);
    const auto levels = static_cast<std::size_t>(
        lambda + 12.0 * std::sqrt(lambda + 1.0) + 30.0);
    std::vector<double> targets(levels + 1, 0.0);
    const double log_lambda = std::log(lambda);
    for (std::size_t level = 0; level < targets.size(); ++level) {
        const double log_pmf = -lambda +
                               static_cast<double>(level) * log_lambda -
                               std::lgamma(static_cast<double>(level) + 1.0);
        targets[level] = static_cast<double>(n) * std::exp(log_pmf);
    }
    return targets;
}

/// Expected bins per level from averaged pilot runs at n_p bins, rescaled
/// to n and extended past the pilot's resolution (fractions below
/// ~1/(reps * n_p) are invisible to the pilot but populated at large n)
/// with a theory-shaped decaying tail.
std::vector<double> pilot_targets(const scenario& sc, const ff_plan& plan,
                                  std::uint64_t ff_balls, std::uint64_t seed,
                                  const steady_state_options& options) {
    // The pilot must admit the scenario's probe count: d <= n_p <= n.
    const std::uint64_t n_p = std::min(
        sc.n, std::max<std::uint64_t>(options.pilot_bins, sc.d + 1));
    const std::uint32_t reps = std::max<std::uint32_t>(1, options.pilot_reps);
    const double density =
        static_cast<double>(ff_balls) / static_cast<double>(sc.n);

    // Same ball density as the skipped prefix, floored to whole rounds.
    std::uint64_t pilot_balls =
        static_cast<std::uint64_t>(density * static_cast<double>(n_p));
    pilot_balls -= pilot_balls % sc.k;
    pilot_balls = std::max(pilot_balls, sc.k);

    std::vector<std::uint64_t> acc;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        fault_point(fault_site::steady_pilot);
        const std::uint64_t pilot_seed =
            rng::derive_seed(seed ^ pilot_salt, rep);
        const level_profile profile = [&] {
            switch (plan.policy) {
            case ff_plan::policy_kind::dchoice: {
                d_choice_level_process pilot(n_p, sc.d, pilot_seed);
                pilot.run_balls(pilot_balls);
                return pilot.profile();
            }
            case ff_plan::policy_kind::one_plus_beta: {
                one_plus_beta_level_process pilot(n_p, sc.beta, pilot_seed);
                pilot.run_balls(pilot_balls);
                return pilot.profile();
            }
            case ff_plan::policy_kind::kd:
            case ff_plan::policy_kind::single:
                break;
            }
            // single never pilots (closed form); kd is the default here.
            kd_choice_level_process pilot(n_p, sc.k, sc.d, pilot_seed);
            pilot.run_balls(pilot_balls);
            return pilot.profile();
        }();
        if (acc.size() < profile.max_level() + 1) {
            acc.resize(profile.max_level() + 1, 0);
        }
        for (std::size_t level = 0; level < acc.size(); ++level) {
            acc[level] += profile.bins_at(level);
        }
    }

    const double scale = static_cast<double>(sc.n) /
                         (static_cast<double>(reps) *
                          static_cast<double>(n_p));
    std::vector<double> targets(acc.size(), 0.0);
    for (std::size_t level = 0; level < acc.size(); ++level) {
        targets[level] = static_cast<double>(acc[level]) * scale;
    }

    // Tail extension: continue the pilot's top decay ratio past its
    // resolution. (1+beta)'s tail is geometric (constant ratio); the
    // multi-choice tails decay doubly exponentially, modeled by sharpening
    // the ratio with the paper's floor(d/k) exponent per level. Levels are
    // added only while they would round to at least one whole bin, so the
    // extension never overfills the upper tail.
    const std::size_t top = acc.size() - 1;
    if (top >= 1 && acc[top] > 0 && acc[top - 1] > 0) {
        double ratio = std::min(
            0.5, static_cast<double>(acc[top]) /
                     static_cast<double>(acc[top - 1]));
        const double sharpen =
            plan.policy == ff_plan::policy_kind::one_plus_beta
                ? 1.0
                : static_cast<double>(std::max<std::uint64_t>(
                      2, sc.d / std::max<std::uint64_t>(1, sc.k)));
        double expected = targets[top] * ratio;
        while (expected >= 1.0 && targets.size() < top + 64) {
            targets.push_back(expected);
            if (sharpen > 1.0) {
                ratio = std::pow(ratio, sharpen);
            }
            expected *= ratio;
        }
    }
    return targets;
}

} // namespace

ff_split fast_forward_split(const scenario& sc, std::uint64_t total_balls) {
    ff_split split;
    split.settle_balls = total_balls;
    const std::uint64_t settle_min =
        std::max<std::uint64_t>(sc.k, sc.n / 8);
    if (total_balls <= sc.n || total_balls <= settle_min) {
        return split; // nothing worth skipping
    }
    std::uint64_t ff = ((total_balls - settle_min) / sc.n) * sc.n;
    ff -= ff % std::max<std::uint64_t>(1, sc.k);
    if (ff == 0) {
        return split;
    }
    split.ff_balls = ff;
    split.settle_balls = total_balls - ff;
    return split;
}

ff_plan plan_fast_forward(const scenario& sc) {
    if (resolve_kernel(sc) != kernel_kind::level) {
        throw cli_error(
            "warmup=ff jump-starts a level profile; the scenario must "
            "resolve to kernel=level (kernel=perbin keeps per-bin state "
            "the fast-forward cannot synthesize)");
    }
    const std::string policy = resolved_policy(sc);
    ff_plan plan;
    if (policy == "kd") {
        plan.policy = sc.d == 1 ? ff_plan::policy_kind::single
                                : ff_plan::policy_kind::kd;
    } else if (policy == "single") {
        plan.policy = ff_plan::policy_kind::single;
    } else if (policy == "dchoice") {
        plan.policy = ff_plan::policy_kind::dchoice;
    } else if (policy == "one_plus_beta") {
        plan.policy = ff_plan::policy_kind::one_plus_beta;
    } else {
        throw cli_error(
            "warmup=ff knows the steady-state shape of the 'kd', 'single', "
            "'dchoice' and 'one_plus_beta' policies only, got policy '" +
            policy + "'");
    }
    plan.sharded = sc.par == par_mode::round;
    return plan;
}

level_profile steady_state_profile(const scenario& sc, const ff_plan& plan,
                                   std::uint64_t ff_balls,
                                   std::uint64_t seed,
                                   const steady_state_options& options) {
    KD_EXPECTS(sc.n >= 1);
    KD_EXPECTS(ff_balls >= 1);

    const std::vector<double> targets =
        plan.policy == ff_plan::policy_kind::single
            ? poisson_targets(sc.n,
                              static_cast<double>(ff_balls) /
                                  static_cast<double>(sc.n))
            : pilot_targets(sc, plan, ff_balls, seed, options);

    // Floor every level (never overfill the upper tail — loads only ever
    // grow, so a synthesized bin above the true profile cannot be walked
    // back by the settle phase), then repair the two invariants exactly:
    // sum(counts) == n and sum(level * counts) == ff_balls. Residuals are
    // a handful of bins/balls and are absorbed at the fullest level, deep
    // in the profile's bulk.
    std::vector<std::uint64_t> counts(targets.size(), 0);
    std::uint64_t bins = 0;
    for (std::size_t level = 0; level < targets.size(); ++level) {
        counts[level] = static_cast<std::uint64_t>(
            std::floor(std::max(0.0, targets[level])));
        bins += counts[level];
    }
    for (std::size_t level = counts.size(); bins > sc.n && level-- > 0;) {
        const std::uint64_t drop = std::min(counts[level], bins - sc.n);
        counts[level] -= drop;
        bins -= drop;
    }
    if (bins < sc.n) {
        counts[fullest_level(counts, 0)] += sc.n - bins;
    }

    std::uint64_t balls = 0;
    for (std::size_t level = 0; level < counts.size(); ++level) {
        balls += static_cast<std::uint64_t>(level) * counts[level];
    }
    while (balls < ff_balls) {
        const std::size_t level = fullest_level(counts, 0);
        if (level + 1 >= counts.size()) {
            counts.push_back(0);
        }
        const std::uint64_t step =
            std::min(ff_balls - balls,
                     std::max<std::uint64_t>(1, counts[level] / 2));
        counts[level] -= step;
        counts[level + 1] += step;
        balls += step;
    }
    while (balls > ff_balls) {
        const std::size_t level = fullest_level(counts, 1);
        KD_ASSERT(counts[level] > 0);
        const std::uint64_t step =
            std::min(balls - ff_balls,
                     std::max<std::uint64_t>(1, counts[level] / 2));
        counts[level] -= step;
        counts[level - 1] += step;
        balls -= step;
    }
    return level_profile::from_counts(counts);
}

level_profile steady_state_profile(const scenario& sc,
                                   std::uint64_t ff_balls,
                                   std::uint64_t seed,
                                   const steady_state_options& options) {
    return steady_state_profile(sc, plan_fast_forward(sc), ff_balls, seed,
                                options);
}

any_process make_settled_process(const scenario& sc, const ff_plan& plan,
                                 level_profile initial, std::uint64_t seed) {
    if (plan.sharded) {
        return any_process(sharded_kd_level_process(std::move(initial), sc.k,
                                                    sc.d, seed, sc.shards));
    }
    switch (plan.policy) {
    case ff_plan::policy_kind::single:
        return any_process(
            single_choice_level_process(std::move(initial), seed));
    case ff_plan::policy_kind::dchoice:
        return any_process(
            d_choice_level_process(std::move(initial), sc.d, seed));
    case ff_plan::policy_kind::one_plus_beta:
        return any_process(
            one_plus_beta_level_process(std::move(initial), sc.beta, seed));
    case ff_plan::policy_kind::kd:
        break;
    }
    return any_process(
        kd_choice_level_process(std::move(initial), sc.k, sc.d, seed));
}

fast_forwarded_process::fast_forwarded_process(scenario sc, ff_plan plan,
                                               std::uint64_t seed)
    : sc_(std::move(sc)), plan_(plan), seed_(seed) {}

void fast_forwarded_process::run_balls(std::uint64_t balls) {
    if (inner_) {
        inner_->run_balls(balls);
        return;
    }
    // The first call fixes the split: only now is the run's total known.
    const ff_split split = fast_forward_split(sc_, balls);
    ff_balls_ = split.ff_balls;
    level_profile initial =
        split.ff_balls > 0
            ? steady_state_profile(sc_, plan_, split.ff_balls, seed_)
            : level_profile(sc_.n);
    inner_.emplace(
        make_settled_process(sc_, plan_, std::move(initial), seed_));
    if (pool_ != nullptr) {
        inner_->use_pool(pool_);
    }
    if (split.settle_balls > 0) {
        inner_->run_balls(split.settle_balls);
    }
}

void fast_forwarded_process::use_pool(thread_pool* pool) {
    pool_ = pool;
    if (inner_) {
        inner_->use_pool(pool);
    }
}

process_observation fast_forwarded_process::observe() const {
    if (!inner_) {
        process_observation obs;
        obs.empty_bins = sc_.n;
        return obs;
    }
    process_observation obs = inner_->observe();
    obs.balls_placed += ff_balls_;
    return obs;
}

std::vector<double> fast_forwarded_process::sorted_loads() const {
    if (!inner_) {
        return std::vector<double>(sc_.n, 0.0);
    }
    return inner_->sorted_loads();
}

ff_validation_result validate_fast_forward(const scenario& sc,
                                           std::uint32_t reps,
                                           std::uint64_t seed) {
    KD_EXPECTS_MSG(reps >= 2, "KS needs at least two repetitions per arm");
    scenario ff = sc;
    ff.warmup = warmup_mode::fast_forward;
    scenario full = sc;
    full.warmup = warmup_mode::full;
    const ff_plan plan = plan_fast_forward(ff);
    const std::uint64_t balls = resolved_balls(sc);

    std::vector<double> ff_max, full_max, ff_gap, full_gap;
    std::vector<double> ff_loads, full_loads;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        fast_forwarded_process fast(ff, plan, rng::derive_seed(seed, rep));
        fast.run_balls(balls);
        const process_observation obs = fast.observe();
        ff_max.push_back(obs.max_load);
        ff_gap.push_back(obs.gap);
        if (rep == 0) {
            ff_loads = fast.sorted_loads();
        }

        any_process reference =
            make_process(full, rng::derive_seed(seed, reps + rep));
        reference.run_balls(balls);
        const process_observation ref_obs = reference.observe();
        full_max.push_back(ref_obs.max_load);
        full_gap.push_back(ref_obs.gap);
        if (rep == 0) {
            full_loads = reference.sorted_loads();
        }
    }

    ff_validation_result result;
    result.reps = reps;
    result.max_load_ks = stats::ks_two_sample(ff_max, full_max);
    result.gap_ks = stats::ks_two_sample(ff_gap, full_gap);
    result.loads_ks = stats::ks_two_sample(std::move(ff_loads),
                                           std::move(full_loads));
    return result;
}

} // namespace kdc::core
