// Distributed storage placement (Section 1.3 of the paper): place k replicas
// (or chunks) of each file on the k least-loaded of d randomly probed
// servers — one (k,d)-choice round per file.
//
//   $ ./distributed_storage --servers=2048 --files=50000 --k=3
//   $ ./distributed_storage --scenario="kd:n=2048,k=3" --files=50000
//
// Prints load balance, placement message cost, chunk-retrieval cost and a
// failure-injection availability estimate, for (k,k+1)-choice vs per-replica
// two-choice vs random placement. The scenario string (core/scenario.hpp)
// maps onto the cluster: n = servers, k = replicas per file.
#include <iostream>

#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "storage/cluster.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("servers", "2048", "number of storage servers");
    args.add_option("files", "50000", "files to place");
    args.add_option("k", "3", "replicas (or chunks) per file");
    args.add_option("fail", "0.05", "per-server failure probability");
    args.add_option("seed", "1", "placement seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto files = static_cast<std::uint64_t>(args.get_int("files"));
    const double fail = args.get_double("fail");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("servers"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = base.k + 1;
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto servers = merged.n;
    const auto k = merged.k;

    using kdc::storage::placement_policy;

    std::cout << "Placing " << files << " files x " << k << " replicas on "
              << servers << " servers\n\n";

    kdc::text_table table;
    table.set_header({"policy", "max load", "msgs/file", "search msgs",
                      "avail (repl)", "avail (chunk)"});
    table.set_align(0, kdc::table_align::left);

    struct policy_case {
        const char* label;
        placement_policy policy;
        std::uint64_t probes;
    };
    const policy_case cases[] = {
        {"(k,k+1)-choice", placement_policy::kd_choice, k + 1},
        {"per-replica 2-choice", placement_policy::per_replica_d_choice, 2},
        {"random", placement_policy::random, 1},
    };
    for (const auto& c : cases) {
        kdc::storage::storage_config config;
        config.servers = servers;
        config.replicas_per_file = k;
        config.probes = c.probes;
        config.policy = c.policy;
        config.seed = seed;
        kdc::storage::storage_cluster cluster(config);
        cluster.place_files(files);

        const auto metrics =
            kdc::core::compute_load_metrics(cluster.server_loads());
        table.add_row(
            {c.label, std::to_string(metrics.max_load),
             kdc::format_fixed(static_cast<double>(
                                   cluster.placement_messages()) /
                                   static_cast<double>(files), 1),
             std::to_string(cluster.search_cost(0)),
             kdc::format_fixed(
                 cluster.estimate_availability(fail, false, 20, seed + 9), 4),
             kdc::format_fixed(
                 cluster.estimate_availability(fail, true, 20, seed + 9),
                 4)});
    }
    std::cout << table << '\n'
              << "The paper's claim: (k,k+1)-choice matches two-choice "
                 "balance at roughly half the\n"
                 "placement messages, and chunk search costs k+1 = "
              << k + 1 << " probes vs 2k = " << 2 * k << ".\n";
    return 0;
}
