// Fenwick (binary indexed) tree over small value domains. The SA_{x0}
// process (Definition 3) needs, per ball, the number of bins whose load
// exceeds the chosen bin's load; loads move by +1 steps so a Fenwick tree
// indexed by load value answers both the query and the update in O(log L).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "support/contracts.hpp"

namespace kdc::core {

class fenwick_tree {
public:
    explicit fenwick_tree(std::size_t size = 0) : tree_(size + 1, 0) {}

    [[nodiscard]] std::size_t size() const noexcept {
        return tree_.size() - 1;
    }

    /// Grows the domain to at least `size` positions (amortized; existing
    /// counts are preserved by rebuilding).
    void grow_to(std::size_t size) {
        if (size <= this->size()) {
            return;
        }
        std::vector<std::uint64_t> values(this->size(), 0);
        for (std::size_t i = 0; i < values.size(); ++i) {
            values[i] = value_at(i);
        }
        values.resize(std::max(size, this->size() * 2), 0);
        tree_.assign(values.size() + 1, 0);
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (values[i] != 0) {
                add(i, static_cast<std::int64_t>(values[i]));
            }
        }
    }

    /// Adds `delta` at position `index` (index < size()).
    void add(std::size_t index, std::int64_t delta) {
        KD_EXPECTS(index < size());
        for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
            tree_[i] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(tree_[i]) + delta);
        }
    }

    /// Sum of positions [0, index) — i.e. strictly below `index`.
    [[nodiscard]] std::uint64_t prefix_sum(std::size_t index) const {
        KD_EXPECTS(index <= size());
        std::uint64_t sum = 0;
        for (std::size_t i = index; i > 0; i -= i & (~i + 1)) {
            sum += tree_[i];
        }
        return sum;
    }

    /// Sum of positions [index, size()).
    [[nodiscard]] std::uint64_t suffix_sum(std::size_t index) const {
        return total() - prefix_sum(index);
    }

    [[nodiscard]] std::uint64_t total() const { return prefix_sum(size()); }

    /// Smallest index i with prefix_sum(i + 1) > target, i.e. the position
    /// holding the (target + 1)-th unit when positions are laid out as runs
    /// of their counts. This is weighted sampling in O(log size): draw
    /// target uniform in [0, total()) and descend the implicit tree once,
    /// instead of binary-searching prefix_sum. Requires target < total()
    /// and every per-position count to be non-negative.
    [[nodiscard]] std::size_t find_kth(std::uint64_t target) const {
        KD_EXPECTS(target < total());
        std::size_t pos = 0;
        for (std::size_t step = std::bit_floor(tree_.size() - 1); step > 0;
             step >>= 1) {
            const std::size_t next = pos + step;
#if defined(__GNUC__) || defined(__clang__)
            // The descent's next probe is one of two known positions; issue
            // both loads early so large trees (weight_profile over many
            // distinct weights) overlap the memory latency with the compare.
            const std::size_t half = step >> 1;
            if (half > 0) {
                const std::size_t last = tree_.size() - 1;
                __builtin_prefetch(tree_.data() + std::min(pos + half, last));
                __builtin_prefetch(tree_.data() + std::min(next + half, last));
            }
#endif
            if (next < tree_.size() && tree_[next] <= target) {
                target -= tree_[next];
                pos = next;
            }
        }
        return pos; // 0-based position; pos < size() because target < total()
    }

    /// Count at a single position.
    [[nodiscard]] std::uint64_t value_at(std::size_t index) const {
        return prefix_sum(index + 1) - prefix_sum(index);
    }

private:
    std::vector<std::uint64_t> tree_;
};

} // namespace kdc::core
