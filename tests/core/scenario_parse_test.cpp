// The scenario grammar and registry: parsing, precise errors, kernel/auto
// resolution, string round-trips and the CLI merge. The behavioural
// (distribution/byte-equality) side lives in scenario_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "core/scenario.hpp"
#include "support/cli.hpp"

using kdc::cli_error;
using kdc::core::kernel_choice;
using kdc::core::kernel_kind;
using kdc::core::metric_kind;
using kdc::core::parse_scenario;
using kdc::core::policy_registry;
using kdc::core::probe_mode;
using kdc::core::probe_policy;
using kdc::core::resolve_kernel;
using kdc::core::resolved_balls;
using kdc::core::scenario;

namespace {

/// The cli_error message for a parse, or "" when none is thrown.
std::string parse_error(const std::string& text) {
    try {
        (void)parse_scenario(text);
    } catch (const cli_error& error) {
        return error.what();
    }
    return "";
}

} // namespace

TEST(ScenarioParse, DefaultsAndFullKeySet) {
    const auto sc = parse_scenario("kd:n=1024,k=2,d=4");
    EXPECT_EQ(sc.family, "kd");
    EXPECT_EQ(sc.n, 1024u);
    EXPECT_EQ(sc.k, 2u);
    EXPECT_EQ(sc.d, 4u);
    EXPECT_EQ(sc.probe, probe_policy::uniform);
    EXPECT_EQ(sc.kernel, kernel_choice::auto_pick);
    EXPECT_EQ(sc.metric, metric_kind::max_load);
    EXPECT_EQ(sc.replacement, probe_mode::with_replacement);

    const auto full = parse_scenario(
        "kd:n=4096,k=2,d=6,balls=1000,probe=one_plus_beta,beta=0.25,"
        "replacement=with,kernel=perbin,metric=gap");
    EXPECT_EQ(full.balls, 1000u);
    EXPECT_EQ(full.probe, probe_policy::one_plus_beta);
    EXPECT_DOUBLE_EQ(full.beta, 0.25);
    EXPECT_EQ(full.kernel, kernel_choice::per_bin);
    EXPECT_EQ(full.metric, metric_kind::gap);
}

TEST(ScenarioParse, ScientificNotationCounts) {
    EXPECT_EQ(parse_scenario("kd:n=1e6,k=2,d=4").n, 1'000'000u);
    EXPECT_EQ(parse_scenario("kd:n=2.5e3,k=2,d=4").n, 2'500u);
    // A count that is not an integer is rejected, not rounded.
    EXPECT_THROW((void)parse_scenario("kd:n=2.5"), cli_error);
}

TEST(ScenarioParse, FamilyPrefixIsOptionalAndValidated) {
    EXPECT_EQ(parse_scenario("n=512,k=2,d=4").family, "kd");
    EXPECT_EQ(parse_scenario("single:n=512").family, "single");
    const auto message = parse_error("bogus:n=512");
    EXPECT_NE(message.find("unknown scenario family 'bogus'"),
              std::string::npos);
    // The error names the registered set.
    EXPECT_NE(message.find("kd"), std::string::npos);
    EXPECT_NE(message.find("weighted"), std::string::npos);
}

TEST(ScenarioParse, UnknownKeyNamesTheValidSet) {
    const auto message = parse_error("kd:n=512,foo=3");
    EXPECT_NE(message.find("unknown scenario key 'foo'"), std::string::npos);
    EXPECT_NE(message.find("kernel"), std::string::npos);
    EXPECT_NE(message.find("metric"), std::string::npos);
}

TEST(ScenarioParse, DuplicateKeyIsAnError) {
    const auto message = parse_error("kd:n=512,n=1024");
    EXPECT_NE(message.find("duplicate scenario key 'n'"), std::string::npos);
}

TEST(ScenarioParse, MalformedPairsAreErrors) {
    EXPECT_THROW((void)parse_scenario("kd:n=512,,k=2"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:n"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:=5"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:n=abc"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:beta=1e999"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:n=512,k=2,d=4,skew=inf,"
                                      "probe=weighted"),
                 cli_error);
}

TEST(ScenarioParse, EnumValuesAreValidated) {
    EXPECT_THROW((void)parse_scenario("kd:probe=nope"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:kernel=nope"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:metric=nope"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:replacement=nope"), cli_error);
}

TEST(ScenarioParse, ParameterRangesAreValidated) {
    // k >= d (and not the 1,1 degeneration) is invalid for kd.
    EXPECT_THROW((void)parse_scenario("kd:n=512,k=4,d=4"), cli_error);
    EXPECT_THROW((void)parse_scenario("kd:n=2,k=1,d=4"), cli_error);
    EXPECT_NO_THROW((void)parse_scenario("kd:n=512,k=1,d=1"));
    EXPECT_THROW((void)parse_scenario("kd:probe=one_plus_beta,beta=1.5"),
                 cli_error);
    EXPECT_THROW(
        (void)parse_scenario("kd:n=512,k=2,d=4,probe=weighted,skew=-1"),
        cli_error);
    EXPECT_THROW((void)parse_scenario("kd:probe=threshold,cap=0"), cli_error);
    // probe only modifies the kd family.
    EXPECT_THROW((void)parse_scenario("single:probe=weighted"), cli_error);
}

TEST(ScenarioParse, LevelKernelRejectionNamesTheCapableSet) {
    const auto message =
        parse_error("kd:n=512,probe=threshold,kernel=level");
    EXPECT_NE(message.find("policy 'threshold' has no level-compressed "
                           "kernel"),
              std::string::npos);
    for (const char* name :
         {"dchoice", "kd", "one_plus_beta", "single", "weighted"}) {
        EXPECT_NE(message.find(name), std::string::npos) << name;
    }
    EXPECT_THROW((void)parse_scenario("greedy:n=512,k=2,d=4,kernel=level"),
                 cli_error);
    // without-replacement probes exist on the per-bin kernel only.
    EXPECT_THROW(
        (void)parse_scenario("kd:n=512,k=2,d=4,replacement=without,"
                             "kernel=level"),
        cli_error);
    EXPECT_THROW((void)parse_scenario("single:replacement=without"),
                 cli_error);
}

TEST(ScenarioParse, AutoKernelPicksLevelWhereSupported) {
    EXPECT_EQ(resolve_kernel(parse_scenario("kd:n=512,k=2,d=4")),
              kernel_kind::level);
    EXPECT_EQ(resolve_kernel(parse_scenario("single:n=512")),
              kernel_kind::level);
    EXPECT_EQ(resolve_kernel(parse_scenario(
                  "kd:n=512,k=2,d=4,probe=one_plus_beta")),
              kernel_kind::level);
    EXPECT_EQ(resolve_kernel(parse_scenario(
                  "kd:n=512,k=2,d=4,probe=weighted,skew=0.5")),
              kernel_kind::level);
    // Policies without a level kernel degrade to perbin under auto.
    EXPECT_EQ(resolve_kernel(parse_scenario("kd:n=512,probe=threshold")),
              kernel_kind::per_bin);
    EXPECT_EQ(resolve_kernel(parse_scenario("greedy:n=512,k=2,d=4")),
              kernel_kind::per_bin);
    // ... and so does the without-replacement ablation.
    EXPECT_EQ(resolve_kernel(parse_scenario(
                  "kd:n=512,k=2,d=4,replacement=without")),
              kernel_kind::per_bin);
    // Explicit kernels are honored as-is.
    EXPECT_EQ(resolve_kernel(parse_scenario("kd:n=512,k=2,d=4,"
                                            "kernel=perbin")),
              kernel_kind::per_bin);
}

TEST(ScenarioParse, ResolvedBallsFollowsThePolicy) {
    EXPECT_EQ(resolved_balls(parse_scenario("kd:n=1000,k=3,d=6")), 999u);
    EXPECT_EQ(resolved_balls(parse_scenario("kd:n=1000,k=1,d=1")), 1000u);
    EXPECT_EQ(resolved_balls(parse_scenario("single:n=1000")), 1000u);
    EXPECT_EQ(resolved_balls(parse_scenario("dchoice:n=1000,k=1,d=2")),
              1000u);
    EXPECT_EQ(resolved_balls(parse_scenario("kd:n=1000,probe=one_plus_beta")),
              1000u);
    EXPECT_EQ(resolved_balls(parse_scenario("greedy:n=1000,k=3,d=6")), 999u);
    EXPECT_EQ(resolved_balls(parse_scenario("kd:n=1000,k=3,d=6,balls=42")),
              42u);
}

TEST(ScenarioParse, ExplicitBallsMustBeWholeRounds) {
    // A balls count that is not a multiple of k is a cli_error at parse
    // time for the round-based policies, never a contract violation later.
    const auto message = parse_error("kd:n=100,k=3,d=6,balls=100");
    EXPECT_NE(message.find("whole number of rounds"), std::string::npos);
    EXPECT_THROW((void)parse_scenario("greedy:n=100,k=3,d=6,balls=100"),
                 cli_error);
    EXPECT_THROW(
        (void)parse_scenario("weighted:n=100,k=3,d=6,skew=0.5,balls=100"),
        cli_error);
    EXPECT_NO_THROW((void)parse_scenario("kd:n=100,k=3,d=6,balls=99"));
    // Per-ball policies take any count.
    EXPECT_NO_THROW((void)parse_scenario("single:n=100,balls=7"));
    EXPECT_NO_THROW((void)parse_scenario("kd:n=100,k=1,d=1,balls=7"));
}

TEST(ScenarioParse, ToStringRoundTripsFullDoublePrecision) {
    scenario sc = parse_scenario("kd:n=512,probe=one_plus_beta");
    sc.beta = 0.123456789012345;
    EXPECT_EQ(parse_scenario(kdc::core::to_string(sc)), sc);
    sc = parse_scenario("kd:n=512,k=2,d=4,probe=weighted");
    sc.skew = 1.0 / 3.0;
    EXPECT_EQ(parse_scenario(kdc::core::to_string(sc)), sc);
}

TEST(ScenarioParse, ToStringRoundTrips) {
    for (const char* text :
         {"kd:n=1024,k=2,d=4", "single:n=512,kernel=level",
          "kd:n=4096,k=8,d=16,probe=weighted,skew=0.5,metric=gap",
          "kd:n=256,probe=threshold,threshold=3,cap=8,metric=messages",
          "dchoice:n=512,k=1,d=3,kernel=perbin",
          "kd:n=512,k=2,d=4,replacement=without,kernel=perbin",
          "greedy:n=512,k=2,d=4,balls=100"}) {
        const auto sc = parse_scenario(text);
        EXPECT_EQ(parse_scenario(kdc::core::to_string(sc)), sc) << text;
    }
}

TEST(ScenarioParse, FamilySpellingAndProbeSpellingAgree) {
    // "weighted:..." is the same scenario as "kd:probe=weighted,..." up to
    // the spelling of the family field.
    auto via_family = parse_scenario("weighted:n=512,k=2,d=4,skew=0.5");
    const auto via_probe =
        parse_scenario("kd:n=512,k=2,d=4,probe=weighted,skew=0.5");
    EXPECT_EQ(kdc::core::resolved_policy(via_family),
              kdc::core::resolved_policy(via_probe));
    EXPECT_EQ(kdc::core::resolved_policy(via_probe), "weighted");
}

TEST(ScenarioParse, RegistryListsBuiltinsAndAcceptsExtensions) {
    auto& registry = policy_registry::instance();
    const auto names = registry.names();
    for (const char* name : {"kd", "single", "dchoice", "greedy", "weighted",
                             "one_plus_beta", "threshold"}) {
        EXPECT_NE(registry.find(name), nullptr) << name;
    }
    EXPECT_GE(names.size(), 7u);
    EXPECT_EQ(registry.find("no_such_policy"), nullptr);
    EXPECT_THROW((void)registry.at("no_such_policy"), cli_error);
}

TEST(ScenarioCli, ScenarioOverridesLegacyFlagsKeyByKey) {
    kdc::arg_parser args;
    args.add_option("n", "2048", "bins");
    args.add_scenario_option();
    const char* argv[] = {"bench", "--scenario=kd:kernel=level,metric=gap"};
    ASSERT_TRUE(args.parse(2, argv));

    scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.k = 2;
    base.d = 4;
    base.kernel = kernel_choice::per_bin;
    const auto merged = kdc::core::scenario_from_cli(args, base);
    EXPECT_EQ(merged.n, 2048u);          // inherited from the legacy flag
    EXPECT_EQ(merged.kernel, kernel_choice::level); // overridden
    EXPECT_EQ(merged.metric, metric_kind::gap);     // overridden
}

TEST(ScenarioCli, AbsentScenarioReturnsTheBaseUntouched) {
    kdc::arg_parser args;
    args.add_scenario_option();
    const char* argv[] = {"bench"};
    ASSERT_TRUE(args.parse(1, argv));
    scenario base;
    base.n = 77; // deliberately invalid for most policies (d=2 > n is fine)
    base.k = 9;
    base.d = 11;
    const auto merged = kdc::core::scenario_from_cli(args, base);
    EXPECT_EQ(merged, base); // no parse, no validation, no surprises
}

TEST(ScenarioParse, ParAndShardsKeys) {
    // Defaults: serial repetition-level parallelism, auto shard count.
    const auto plain = parse_scenario("kd:n=1024,k=2,d=4");
    EXPECT_EQ(plain.par, kdc::core::par_mode::rep);
    EXPECT_EQ(plain.shards, 0u);

    const auto sharded =
        parse_scenario("kd:n=1024,k=2,d=4,par=round,shards=64");
    EXPECT_EQ(sharded.par, kdc::core::par_mode::round);
    EXPECT_EQ(sharded.shards, 64u);

    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4,shards=auto").shards, 0u);
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4,shards=1e3").shards, 1000u);
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4,par=rep").par,
              kdc::core::par_mode::rep);
}

TEST(ScenarioParse, SelparKey) {
    // Default: auto selection segments, carried as 0.
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4").selpar, 0u);
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4,selpar=auto").selpar, 0u);
    EXPECT_EQ(
        parse_scenario("kd:n=1024,k=2,d=4,par=round,selpar=8").selpar, 8u);
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4,selpar=1e2").selpar, 100u);
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,selpar=0")
                  .find("'selpar' must be 'auto' or a positive count"),
              std::string::npos);
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,selpar=many")
                  .find("'selpar'"),
              std::string::npos);
}

TEST(ScenarioParse, ParAndShardsRoundTripThroughToString) {
    for (const char* text :
         {"kd:n=1024,k=2,d=4,par=round,shards=16",
          "kd:n=4096,k=8,d=16,par=round",
          "kd:n=512,k=2,d=4,shards=7",
          "kd:n=512,k=2,d=4,par=round,shards=4,selpar=7"}) {
        const auto sc = parse_scenario(text);
        EXPECT_EQ(parse_scenario(kdc::core::to_string(sc)), sc) << text;
    }
}

TEST(ScenarioParse, ParAndShardsErrorsArePrecise) {
    // Bad spellings.
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,par=parallel")
                  .find("par must be 'rep' or 'round'"),
              std::string::npos);
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,shards=0")
                  .find("'shards' must be 'auto' or a positive count"),
              std::string::npos);

    // par=round is the sharded (k,d) kernel: only the kd family, only
    // with-replacement probes.
    EXPECT_NE(parse_error("single:n=512,par=round").find("'kd' family"),
              std::string::npos);
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,probe=weighted,skew=0.5,"
                          "par=round")
                  .find("'kd' family"),
              std::string::npos);
    EXPECT_NE(parse_error("kd:n=512,k=2,d=4,replacement=without,par=round")
                  .find("with-replacement"),
              std::string::npos);

    // par=rep stays valid for all of those scenarios.
    EXPECT_EQ(parse_error("kd:n=512,k=2,d=4,replacement=without,par=rep"),
              "");
}
