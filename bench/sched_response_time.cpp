// The parallel job scheduling application (Section 1.3): response time of a
// cluster under per-task d-choice probing (Sparrow style) vs (k,d)-choice
// shared probing, swept over utilization.
//
// Two comparisons, matching the paper's argument:
//   (a) equal probe budget per job — shared probing wins on response time;
//   (b) equal per-task quality (same d) — shared probing matches response
//       at 1/k the message cost.
//
//   ./sched_response_time [--workers=256] [--jobs=20000] [--k=4] [--seed=9]
//                         [--scenario "kd:n=256,k=4"]
//
// --scenario (core/scenario.hpp) maps onto the cluster: n = workers,
// k = tasks per job, d = comparison (a)'s probe budget per job (the
// per-task arm gets d/k probes per task; default d = 2k) — equivalent
// settings print byte-identical output to the legacy flags.
#include <algorithm>
#include <iostream>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "sched/scheduler.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

namespace {

/// True when the --scenario text itself names key `d`. The bench derives
/// its default probe budget from k (d = 2k), so a scenario overriding k
/// WITHOUT naming d must re-derive — merged.d would be the stale base
/// default, not the user's intent. Mirrors parse_scenario's grammar
/// (optional family prefix, comma-separated key=value pairs).
bool scenario_sets_d(std::string_view text) {
    const auto colon = text.find(':');
    if (colon != std::string_view::npos && colon < text.find('=') &&
        colon < text.find(',')) {
        text.remove_prefix(colon + 1);
    }
    while (!text.empty()) {
        const auto comma = text.find(',');
        const std::string_view pair = text.substr(0, comma);
        text = comma == std::string_view::npos ? std::string_view{}
                                               : text.substr(comma + 1);
        const auto eq = pair.find('=');
        if (eq != std::string_view::npos && pair.substr(0, eq) == "d") {
            return true;
        }
    }
    return false;
}

kdc::sched::scheduler_result run_one(std::uint64_t workers,
                                     std::uint64_t jobs, std::uint64_t k,
                                     std::uint64_t probes,
                                     kdc::sched::probe_strategy strategy,
                                     double utilization, std::uint64_t seed) {
    kdc::sched::scheduler_config config;
    config.workers = workers;
    config.jobs = jobs;
    config.tasks_per_job = k;
    config.probes = probes;
    config.mean_service = 1.0;
    config.arrival_rate =
        utilization * static_cast<double>(workers) / static_cast<double>(k);
    config.strategy = strategy;
    config.seed = seed;
    return kdc::sched::simulate(config);
}

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("workers", "256", "cluster size");
    args.add_option("jobs", "20000", "jobs per run");
    args.add_option("k", "4", "tasks per job");
    args.add_option("seed", "9", "master seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto jobs = static_cast<std::uint64_t>(args.get_int("jobs"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    // Scenario mapping: n = workers, k = tasks per job, d = comparison
    // (a)'s equal message budget per job (per-task arm: d/k probes per
    // task). The d = 2k default reproduces the paper's Section 1.3
    // comparison and the bench's historical output byte for byte.
    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("workers"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = 2 * base.k;
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto workers = merged.n;
    const auto k = merged.k;
    const auto d_budget = scenario_sets_d(args.get_string("scenario"))
                              ? merged.d
                              : 2 * k;
    const auto d_per_task = std::max<std::uint64_t>(1, d_budget / k);

    const std::vector<double> utilizations{0.3, 0.5, 0.7, 0.85};

    using kdc::sched::probe_strategy;

    std::cout << "Cluster scheduling (Section 1.3): " << workers
              << " workers, jobs of k = " << k
              << " parallel tasks, exp(1) service, " << jobs
              << " jobs per point\n\n";

    std::cout << "(a) Equal message budget: (k,d)-batch with d = 2k probes "
                 "per JOB vs per-task with 2 probes per TASK\n\n";
    kdc::text_table budget_table;
    budget_table.set_header({"util", "strategy", "mean resp", "p99 resp",
                             "probes/job"});
    budget_table.set_align(1, kdc::table_align::left);
    std::uint64_t run_seed = seed;
    for (const double util : utilizations) {
        const auto shared = run_one(workers, jobs, k, d_budget,
                                    probe_strategy::batch_kd_choice, util,
                                    ++run_seed);
        const auto per_task = run_one(workers, jobs, k, d_per_task,
                                      probe_strategy::per_task_d_choice, util,
                                      ++run_seed);
        const auto random = run_one(workers, jobs, k, d_per_task,
                                    probe_strategy::random_worker, util,
                                    ++run_seed);
        auto row = [&](const char* name,
                       const kdc::sched::scheduler_result& r) {
            budget_table.add_row(
                {kdc::format_fixed(util, 2), name,
                 kdc::format_fixed(r.response_time.mean, 3),
                 kdc::format_fixed(r.response_time.p99, 2),
                 kdc::format_fixed(static_cast<double>(r.probe_messages) /
                                       static_cast<double>(jobs), 1)});
        };
        row("(k,2k)-choice shared", shared);
        row("per-task 2-choice", per_task);
        row("random", random);
    }
    std::cout << budget_table << '\n';

    std::cout << "(b) Equal probe pool d per job vs per task: (k,d)-batch "
                 "(d probes/job) vs per-task d-choice (k*d probes/job)\n\n";
    kdc::text_table quality_table;
    quality_table.set_header({"util", "strategy", "mean resp", "p99 resp",
                              "probes/job"});
    quality_table.set_align(1, kdc::table_align::left);
    const std::uint64_t d_pool = 3 * k;
    for (const double util : utilizations) {
        const auto shared = run_one(workers, jobs, k, d_pool,
                                    probe_strategy::batch_kd_choice, util,
                                    ++run_seed);
        const auto per_task = run_one(workers, jobs, k, d_pool,
                                      probe_strategy::per_task_d_choice, util,
                                      ++run_seed);
        auto row = [&](const char* name,
                       const kdc::sched::scheduler_result& r) {
            quality_table.add_row(
                {kdc::format_fixed(util, 2), name,
                 kdc::format_fixed(r.response_time.mean, 3),
                 kdc::format_fixed(r.response_time.p99, 2),
                 kdc::format_fixed(static_cast<double>(r.probe_messages) /
                                       static_cast<double>(jobs), 1)});
        };
        row("(k,3k)-choice shared", shared);
        row("per-task 3k-choice", per_task);
    }
    std::cout << quality_table << '\n'
              << "Shapes to verify: in (a), shared probing beats per-task at "
                 "every utilization for the\n"
                 "same probes/job; in (b), shared stays competitive while "
                 "spending 1/k of the messages.\n";
    return 0;
}
