#include "support/text_table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/contracts.hpp"

namespace kdc {

void text_table::set_header(std::vector<std::string> header) {
    header_ = std::move(header);
    aligns_.assign(header_.size(), table_align::right);
    if (!aligns_.empty()) {
        aligns_.front() = table_align::left;
    }
}

void text_table::set_align(std::size_t col, table_align align) {
    if (col >= aligns_.size()) {
        aligns_.resize(col + 1, table_align::right);
    }
    aligns_[col] = align;
}

void text_table::add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
}

std::vector<std::size_t> text_table::column_widths() const {
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string>& row) {
        if (row.size() > widths.size()) {
            widths.resize(row.size(), 0);
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    absorb(header_);
    for (const auto& row : rows_) {
        absorb(row);
    }
    return widths;
}

std::string text_table::to_string() const {
    const auto widths = column_widths();
    std::ostringstream out;

    auto align_of = [this](std::size_t col) {
        return col < aligns_.size() ? aligns_[col] : table_align::right;
    };
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string cell = i < row.size() ? row[i] : std::string{};
            if (i > 0) {
                out << "  ";
            }
            const auto pad = widths[i] - std::min(widths[i], cell.size());
            if (align_of(i) == table_align::right) {
                out << std::string(pad, ' ') << cell;
            } else {
                out << cell << std::string(pad, ' ');
            }
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit_row(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            total += widths[i] + (i > 0 ? 2 : 0);
        }
        out << std::string(total, '-') << '\n';
    }
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::ostream& operator<<(std::ostream& os, const text_table& table) {
    return os << table.to_string();
}

std::string format_fixed(double value, int precision) {
    KD_EXPECTS(precision >= 0);
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string format_general(double value, int significant) {
    KD_EXPECTS(significant > 0);
    std::ostringstream out;
    out << std::setprecision(significant) << value;
    return out.str();
}

} // namespace kdc
