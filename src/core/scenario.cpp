#include "core/scenario.hpp"

#include <charconv>
#include <cmath>
#include <iostream>
#include <limits>
#include <new>
#include <set>
#include <sstream>
#include <utility>

#include "core/baselines.hpp"
#include "core/fault_injection.hpp"
#include "core/level_process.hpp"
#include "core/sharded_kernel.hpp"
#include "core/steady_state.hpp"
#include "core/weighted.hpp"
#include "support/cli.hpp"

namespace kdc::core {

namespace {

/// The full key set of the grammar, for the unknown-key diagnostic.
constexpr const char* scenario_keys =
    "balls, beta, cap, d, k, kernel, metric, n, par, probe, replacement, "
    "selpar, shards, skew, threshold, warmup";

std::string join(const std::vector<std::string>& names) {
    std::string out;
    for (const auto& name : names) {
        if (!out.empty()) {
            out += ", ";
        }
        out += name;
    }
    return out;
}

/// Parses a count that may be written in scientific notation ("1e9").
std::uint64_t parse_count(const std::string& key, const std::string& text) {
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec == std::errc{} && ptr == text.data() + text.size()) {
        return value;
    }
    // Fall back to a double so "1e9" and "2.5e4" work; the value must
    // still be a non-negative integer that fits 64 bits.
    double parsed = 0.0;
    try {
        std::size_t pos = 0;
        parsed = std::stod(text, &pos);
        if (pos != text.size()) {
            throw cli_error("scenario key '" + key +
                            "' expects a non-negative integer, got '" + text +
                            "' (trailing characters after the value)");
        }
    } catch (const std::invalid_argument&) {
        throw cli_error("scenario key '" + key +
                        "' expects a non-negative integer, got '" + text +
                        "'");
    } catch (const std::out_of_range&) {
        throw cli_error("scenario key '" + key + "' value '" + text +
                        "' is out of range");
    }
    if (!std::isfinite(parsed) || parsed < 0.0 ||
        parsed != std::floor(parsed) || parsed > 1.8e19) {
        throw cli_error("scenario key '" + key +
                        "' expects a non-negative integer, got '" + text +
                        "'");
    }
    return static_cast<std::uint64_t>(parsed);
}

double parse_double(const std::string& key, const std::string& text) {
    double value = 0.0;
    try {
        std::size_t pos = 0;
        value = std::stod(text, &pos);
        if (pos != text.size()) {
            throw cli_error("scenario key '" + key +
                            "' expects a number, got '" + text +
                            "' (trailing characters after the value)");
        }
    } catch (const std::invalid_argument&) {
        throw cli_error("scenario key '" + key + "' expects a number, got '" +
                        text + "'");
    } catch (const std::out_of_range&) {
        throw cli_error("scenario key '" + key + "' value '" + text +
                        "' is out of range");
    }
    if (!std::isfinite(value)) {
        throw cli_error("scenario key '" + key + "' must be finite, got '" +
                        text + "'");
    }
    return value;
}

probe_policy parse_probe(const std::string& text) {
    if (text == "uniform") {
        return probe_policy::uniform;
    }
    if (text == "weighted") {
        return probe_policy::weighted;
    }
    if (text == "one_plus_beta") {
        return probe_policy::one_plus_beta;
    }
    if (text == "threshold") {
        return probe_policy::threshold;
    }
    throw cli_error("scenario key 'probe' must be one of 'uniform', "
                    "'weighted', 'one_plus_beta' or 'threshold', got '" +
                    text + "'");
}

kernel_choice parse_kernel(const std::string& text) {
    if (text == "perbin") {
        return kernel_choice::per_bin;
    }
    if (text == "level") {
        return kernel_choice::level;
    }
    if (text == "auto") {
        return kernel_choice::auto_pick;
    }
    throw cli_error("scenario key 'kernel' must be 'perbin', 'level' or "
                    "'auto', got '" +
                    text + "'");
}

/// shards = auto | positive count; "auto" is carried as 0 (the
/// resolve_shard_count sentinel).
std::uint64_t parse_shards(const std::string& text) {
    if (text == "auto") {
        return 0;
    }
    const std::uint64_t value = parse_count("shards", text);
    if (value == 0) {
        throw cli_error("scenario key 'shards' must be 'auto' or a positive "
                        "count, got '" +
                        text + "'");
    }
    return value;
}

/// selpar = auto | positive count; "auto" is carried as 0 (the
/// resolve_selection_segments sentinel).
std::uint64_t parse_selpar(const std::string& text) {
    if (text == "auto") {
        return 0;
    }
    const std::uint64_t value = parse_count("selpar", text);
    if (value == 0) {
        throw cli_error("scenario key 'selpar' must be 'auto' or a positive "
                        "count, got '" +
                        text + "'");
    }
    return value;
}

probe_mode parse_replacement(const std::string& text) {
    if (text == "with") {
        return probe_mode::with_replacement;
    }
    if (text == "without") {
        return probe_mode::without_replacement;
    }
    throw cli_error("scenario key 'replacement' must be 'with' or "
                    "'without', got '" +
                    text + "'");
}

/// The weight distribution a scenario's skew knob denotes: unit weights at
/// skew 0, Pareto(1 + 1/skew, x_min = 1) otherwise (larger skew = heavier
/// tail, always finite mean).
weight_distribution skew_weights(double skew) {
    if (skew == 0.0) {
        return unit_weights();
    }
    return pareto_weights(1.0 + 1.0 / skew, 1.0);
}

} // namespace

const char* probe_policy_name(probe_policy probe) noexcept {
    switch (probe) {
    case probe_policy::weighted:
        return "weighted";
    case probe_policy::one_plus_beta:
        return "one_plus_beta";
    case probe_policy::threshold:
        return "threshold";
    case probe_policy::uniform:
        break;
    }
    return "uniform";
}

const char* warmup_mode_name(warmup_mode warmup) noexcept {
    return warmup == warmup_mode::fast_forward ? "ff" : "full";
}

warmup_mode warmup_from_name(const std::string& text) {
    if (text == "full") {
        return warmup_mode::full;
    }
    if (text == "ff") {
        return warmup_mode::fast_forward;
    }
    throw cli_error("scenario key 'warmup' must be 'full' (simulate every "
                    "ball) or 'ff' (steady-state fast-forward), got '" +
                    text + "'");
}

const char* kernel_choice_name(kernel_choice kernel) noexcept {
    switch (kernel) {
    case kernel_choice::per_bin:
        return "perbin";
    case kernel_choice::level:
        return "level";
    case kernel_choice::auto_pick:
        break;
    }
    return "auto";
}

scenario parse_scenario(std::string_view text) {
    return parse_scenario(text, scenario{});
}

scenario parse_scenario(std::string_view text, scenario base) {
    scenario sc = std::move(base);
    std::string_view rest = text;

    // Optional family prefix before the first ':'; the family must be a
    // registered policy name. A ':' inside the key=value list (i.e. after
    // an '=' or ',') is not a family separator.
    const auto colon = rest.find(':');
    if (colon != std::string_view::npos &&
        colon < rest.find('=') && colon < rest.find(',')) {
        const std::string family(rest.substr(0, colon));
        if (policy_registry::instance().find(family) == nullptr) {
            throw cli_error(
                "unknown scenario family '" + family + "'; registered: " +
                join(policy_registry::instance().names()));
        }
        sc.family = family;
        rest.remove_prefix(colon + 1);
    }

    std::set<std::string> seen;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string_view pair = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (pair.empty()) {
            throw cli_error("malformed scenario: empty key=value pair "
                            "(double comma or trailing comma?)");
        }
        const auto eq = pair.find('=');
        if (eq == std::string_view::npos || eq == 0) {
            throw cli_error("malformed scenario pair '" + std::string(pair) +
                            "': expected key=value");
        }
        const std::string key(pair.substr(0, eq));
        const std::string value(pair.substr(eq + 1));
        if (!seen.insert(key).second) {
            throw cli_error("duplicate scenario key '" + key + "'");
        }
        if (key == "n") {
            sc.n = parse_count(key, value);
        } else if (key == "k") {
            sc.k = parse_count(key, value);
        } else if (key == "d") {
            sc.d = parse_count(key, value);
        } else if (key == "balls") {
            sc.balls = parse_count(key, value);
        } else if (key == "probe") {
            sc.probe = parse_probe(value);
        } else if (key == "skew") {
            sc.skew = parse_double(key, value);
        } else if (key == "beta") {
            sc.beta = parse_double(key, value);
        } else if (key == "threshold") {
            sc.threshold = parse_count(key, value);
        } else if (key == "cap") {
            sc.cap = parse_count(key, value);
        } else if (key == "replacement") {
            sc.replacement = parse_replacement(value);
        } else if (key == "kernel") {
            sc.kernel = parse_kernel(value);
        } else if (key == "par") {
            sc.par = par_mode_from_name(value);
        } else if (key == "shards") {
            sc.shards = parse_shards(value);
        } else if (key == "selpar") {
            sc.selpar = parse_selpar(value);
        } else if (key == "metric") {
            sc.metric = metric_from_name(value);
        } else if (key == "warmup") {
            sc.warmup = warmup_from_name(value);
        } else {
            throw cli_error("unknown scenario key '" + key +
                            "'; valid keys: " + scenario_keys);
        }
    }
    validate_scenario(sc);
    return sc;
}

std::string to_string(const scenario& sc) {
    // Every key is spelled out so parse_scenario(to_string(sc)) == sc
    // regardless of which fields the resolved policy actually reads;
    // max_digits10 keeps the double-valued knobs lossless too.
    std::ostringstream out;
    out.precision(std::numeric_limits<double>::max_digits10);
    out << sc.family << ":n=" << sc.n << ",k=" << sc.k << ",d=" << sc.d;
    if (sc.balls != 0) {
        out << ",balls=" << sc.balls;
    }
    out << ",probe=" << probe_policy_name(sc.probe) << ",skew=" << sc.skew
        << ",beta=" << sc.beta << ",threshold=" << sc.threshold
        << ",cap=" << sc.cap << ",replacement="
        << (sc.replacement == probe_mode::with_replacement ? "with"
                                                           : "without")
        << ",kernel=" << kernel_choice_name(sc.kernel)
        << ",par=" << par_mode_name(sc.par) << ",shards=";
    if (sc.shards == 0) {
        out << "auto";
    } else {
        out << sc.shards;
    }
    out << ",selpar=";
    if (sc.selpar == 0) {
        out << "auto";
    } else {
        out << sc.selpar;
    }
    out << ",metric=" << metric_name(sc.metric)
        << ",warmup=" << warmup_mode_name(sc.warmup);
    return out.str();
}

std::string resolved_policy(const scenario& sc) {
    if (sc.probe != probe_policy::uniform) {
        if (sc.family != "kd") {
            throw cli_error(
                "scenario key 'probe' modifies the 'kd' family only; "
                "family '" +
                sc.family + "' already fixes the policy");
        }
        return probe_policy_name(sc.probe);
    }
    return sc.family;
}

void validate_scenario(const scenario& sc) {
    const std::string policy = resolved_policy(sc);
    const auto& info = policy_registry::instance().at(policy);
    if (sc.n < 1) {
        throw cli_error("scenario needs n >= 1 bins");
    }
    if (policy == "kd" || policy == "greedy" || policy == "weighted") {
        // k = d = 1 is the single-choice degeneration the Table-1 grid
        // uses for its (1,1) cell; anything else needs 1 <= k < d <= n.
        const bool single = policy == "kd" && sc.k == 1 && sc.d == 1;
        if (!single && !(sc.k >= 1 && sc.k < sc.d && sc.d <= sc.n)) {
            throw cli_error("policy '" + policy +
                            "' requires 1 <= k < d <= n (or k = d = 1 for "
                            "the single-choice degeneration of 'kd'), got "
                            "k=" +
                            std::to_string(sc.k) + ", d=" +
                            std::to_string(sc.d) + ", n=" +
                            std::to_string(sc.n));
        }
    } else if (policy == "dchoice") {
        if (!(sc.d >= 1 && sc.d <= sc.n)) {
            throw cli_error("policy 'dchoice' requires 1 <= d <= n, got d=" +
                            std::to_string(sc.d) + ", n=" +
                            std::to_string(sc.n));
        }
    }
    // The round-based policies place whole rounds of k balls; an explicit
    // balls count that is not a multiple of k must fail here as a
    // cli_error, not later as a contract violation on a worker thread.
    if (sc.balls != 0 && sc.balls % sc.k != 0 &&
        ((policy == "kd" && sc.d > 1) || policy == "greedy" ||
         policy == "weighted")) {
        throw cli_error("scenario key 'balls' must be a whole number of "
                        "rounds (a multiple of k=" +
                        std::to_string(sc.k) + ") for policy '" + policy +
                        "', got " + std::to_string(sc.balls));
    }
    if (policy == "weighted" && sc.skew < 0.0) {
        throw cli_error("scenario key 'skew' must be >= 0 (0 = unit "
                        "weights), got " +
                        std::to_string(sc.skew));
    }
    if (policy == "one_plus_beta" && !(sc.beta >= 0.0 && sc.beta <= 1.0)) {
        throw cli_error("scenario key 'beta' must lie in [0, 1], got " +
                        std::to_string(sc.beta));
    }
    if (policy == "threshold" &&
        (sc.cap < 1 || sc.cap > 0xffffffffULL)) {
        throw cli_error("scenario key 'cap' must lie in [1, 2^32) (a ball "
                        "probes at least once)");
    }
    if (sc.replacement == probe_mode::without_replacement &&
        !info.supports_replacement) {
        throw cli_error("policy '" + policy +
                        "' only supports replacement=with (the "
                        "without-replacement ablation exists for 'kd' on "
                        "the perbin kernel)");
    }
    // par=round is the sharded (k,d)-choice kernel: it replays the serial
    // kd tape, so only the paper's process qualifies — the 'kd' family
    // proper (not its d=1 single-choice degeneration) with the
    // with-replacement probes the tape encodes.
    if (sc.par == par_mode::round) {
        if (policy != "kd") {
            throw cli_error("par=round (the sharded round-parallel kernel) "
                            "supports the 'kd' family only, got policy '" +
                            policy + "'");
        }
        if (sc.d < 2) {
            throw cli_error("par=round requires d >= 2 (the d=1 "
                            "single-choice degeneration has no rounds to "
                            "shard)");
        }
        if (sc.replacement != probe_mode::with_replacement) {
            throw cli_error("par=round replays the with-replacement probe "
                            "tape; use replacement=with or par=rep");
        }
    }
    // kernel=level incompatibilities are resolve_kernel's job; validating
    // here too keeps parse_scenario errors early and complete.
    if (sc.kernel == kernel_choice::level) {
        (void)resolve_kernel(sc);
    }
    // warmup=ff support (level kernel, known steady-state shape) is
    // plan_fast_forward's job — its cli_errors surface at parse time too.
    if (sc.warmup == warmup_mode::fast_forward) {
        (void)plan_fast_forward(sc);
    }
}

kernel_kind resolve_kernel(const scenario& sc) {
    const std::string policy = resolved_policy(sc);
    const auto& info = policy_registry::instance().at(policy);
    switch (sc.kernel) {
    case kernel_choice::per_bin:
        return kernel_kind::per_bin;
    case kernel_choice::level:
        if (!info.supports_level) {
            throw cli_error(
                "policy '" + policy +
                "' has no level-compressed kernel; kernel=level supports: " +
                join(policy_registry::instance().level_capable_names()));
        }
        if (sc.replacement == probe_mode::without_replacement) {
            throw cli_error("kernel=level simulates the paper's "
                            "with-replacement probes; use replacement=with "
                            "or kernel=perbin");
        }
        return kernel_kind::level;
    case kernel_choice::auto_pick:
        break;
    }
    return info.supports_level &&
                   sc.replacement == probe_mode::with_replacement
               ? kernel_kind::level
               : kernel_kind::per_bin;
}

std::uint64_t resolved_balls(const scenario& sc) {
    if (sc.balls != 0) {
        return sc.balls;
    }
    const std::string policy = resolved_policy(sc);
    if ((policy == "kd" && sc.d > 1) || policy == "greedy" ||
        policy == "weighted") {
        return whole_rounds_balls(sc.n, sc.k);
    }
    return sc.n; // per-ball policies (and the single-choice degeneration)
}

repetition_result to_repetition_result(const process_observation& obs) {
    repetition_result r;
    r.max_load = static_cast<std::uint64_t>(obs.max_load);
    r.gap = obs.gap;
    r.messages = obs.messages;
    r.empty_bins = obs.empty_bins;
    return r;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

policy_registry& policy_registry::instance() {
    static policy_registry registry;
    return registry;
}

void policy_registry::register_policy(policy_info info) {
    KD_EXPECTS_MSG(!info.name.empty(), "a policy needs a name");
    KD_EXPECTS_MSG(static_cast<bool>(info.make),
                   "a policy needs a make function");
    entries_[info.name] = std::move(info);
}

const policy_info* policy_registry::find(std::string_view name) const {
    const auto it = entries_.find(name);
    return it != entries_.end() ? &it->second : nullptr;
}

const policy_info& policy_registry::at(std::string_view name) const {
    const policy_info* info = find(name);
    if (info == nullptr) {
        throw cli_error("unknown policy '" + std::string(name) +
                        "'; registered: " + join(names()));
    }
    return *info;
}

std::vector<std::string> policy_registry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, info] : entries_) {
        out.push_back(name);
    }
    return out; // std::map iterates sorted
}

std::vector<std::string> policy_registry::level_capable_names() const {
    std::vector<std::string> out;
    for (const auto& [name, info] : entries_) {
        if (info.supports_level) {
            out.push_back(name);
        }
    }
    return out;
}

policy_registry::policy_registry() {
    register_policy(
        {"kd",
         "the paper's (k,d)-choice; d=1 degenerates to single-choice",
         /*supports_level=*/true, /*supports_replacement=*/true,
         [](const scenario& sc, kernel_kind kernel, std::uint64_t seed) {
             if (sc.d == 1) {
                 // The Table-1 (1,1) cell: single choice by construction.
                 if (kernel == kernel_kind::level) {
                     return any_process(
                         single_choice_level_process(sc.n, seed));
                 }
                 return any_process(single_choice_process(sc.n, seed));
             }
             if (sc.par == par_mode::round) {
                 // The sharded round-parallel kernels: byte-identical to
                 // the serial kernels below (validate_scenario already
                 // pinned replacement=with and d >= 2).
                 if (kernel == kernel_kind::level) {
                     return any_process(sharded_kd_level_process(
                         sc.n, sc.k, sc.d, seed, sc.shards, sc.selpar));
                 }
                 return any_process(sharded_kd_process(
                     sc.n, sc.k, sc.d, seed, sc.shards, sc.selpar));
             }
             if (kernel == kernel_kind::level) {
                 return any_process(
                     kd_choice_level_process(sc.n, sc.k, sc.d, seed));
             }
             kd_choice_process process(sc.n, sc.k, sc.d, seed);
             process.set_probe_mode(sc.replacement);
             return any_process(std::move(process));
         }});
    register_policy(
        {"single", "classical single-choice (one uniform probe per ball)",
         /*supports_level=*/true, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind kernel, std::uint64_t seed) {
             if (kernel == kernel_kind::level) {
                 return any_process(single_choice_level_process(sc.n, seed));
             }
             return any_process(single_choice_process(sc.n, seed));
         }});
    register_policy(
        {"dchoice",
         "classical d-choice of Azar et al. (least loaded of d probes)",
         /*supports_level=*/true, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind kernel, std::uint64_t seed) {
             if (kernel == kernel_kind::level) {
                 return any_process(
                     d_choice_level_process(sc.n, sc.d, seed));
             }
             return any_process(d_choice_process(sc.n, sc.d, seed));
         }});
    register_policy(
        {"greedy",
         "the Section 7 modified policy (no multiplicity cap on "
         "less-loaded distinct bins)",
         /*supports_level=*/false, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind, std::uint64_t seed) {
             return any_process(
                 batched_greedy_process(sc.n, sc.k, sc.d, seed));
         }});
    register_policy(
        {"weighted",
         "weighted (k,d)-choice: Pareto ball weights with tail skew "
         "(skew=0 = unit weights)",
         /*supports_level=*/true, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind kernel, std::uint64_t seed) {
             if (kernel == kernel_kind::level) {
                 return any_process(weighted_kd_level_process(
                     sc.n, sc.k, sc.d, seed, skew_weights(sc.skew)));
             }
             return any_process(weighted_kd_process(
                 sc.n, sc.k, sc.d, seed, skew_weights(sc.skew)));
         }});
    register_policy(
        {"one_plus_beta",
         "the (1+beta)-choice of Peres-Talwar-Wieder (two-choice with "
         "probability beta)",
         /*supports_level=*/true, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind kernel, std::uint64_t seed) {
             if (kernel == kernel_kind::level) {
                 return any_process(
                     one_plus_beta_level_process(sc.n, sc.beta, seed));
             }
             return any_process(
                 one_plus_beta_process(sc.n, sc.beta, seed));
         }});
    register_policy(
        {"threshold",
         "adaptive threshold probing (Czumaj-Stemann flavor): probe until "
         "load < threshold, up to cap probes",
         /*supports_level=*/false, /*supports_replacement=*/false,
         [](const scenario& sc, kernel_kind, std::uint64_t seed) {
             return any_process(adaptive_threshold_process(
                 sc.n, sc.threshold, static_cast<std::uint32_t>(sc.cap),
                 seed));
         }});
}

// ---------------------------------------------------------------------------
// Factories and runners
// ---------------------------------------------------------------------------

any_process make_process(const scenario& sc, std::uint64_t seed) {
    validate_scenario(sc);
    if (sc.warmup == warmup_mode::fast_forward) {
        // The fast-forward wrapper defers the steady-state jump to its
        // first run_balls call (only then is the run's total known) and
        // settles on the scenario's level kernel.
        return any_process(
            fast_forwarded_process(sc, plan_fast_forward(sc), seed));
    }
    const kernel_kind kernel = resolve_kernel(sc);
    const auto& info = policy_registry::instance().at(resolved_policy(sc));
    if (kernel == kernel_kind::per_bin) {
        try {
            fault_point(fault_site::perbin_alloc);
            return info.make(sc, kernel, seed);
        } catch (const std::bad_alloc&) {
            // Graceful degradation: the per-bin kernel's O(n) state is the
            // only allocation that scales with n, and the level kernel
            // simulates the SAME distribution whenever the policy has one
            // and probes are with replacement. Fall back instead of dying;
            // anything else (or a second failure) propagates.
            if (!info.supports_level ||
                sc.replacement != probe_mode::with_replacement) {
                throw;
            }
            std::cerr << "make_process: per-bin state allocation failed for "
                         "n=" << sc.n
                      << "; degrading to the level kernel (same "
                         "distribution, O(max load) state)\n";
            return info.make(sc, kernel_kind::level, seed);
        }
    }
    return info.make(sc, kernel, seed);
}

repetition_result run_scenario_repetition(const scenario& sc,
                                          std::uint64_t derived_seed,
                                          std::uint64_t balls) {
    return run_scenario_repetition(sc, derived_seed, balls, nullptr);
}

repetition_result run_scenario_repetition(const scenario& sc,
                                          std::uint64_t derived_seed,
                                          std::uint64_t balls,
                                          thread_pool* pool) {
    auto process = make_process(sc, derived_seed);
    if (pool != nullptr) {
        process.use_pool(pool);
    }
    process.run_balls(balls);
    return to_repetition_result(process.observe());
}

namespace {

experiment_result scenario_experiment(const scenario& sc,
                                      const experiment_config& config,
                                      thread_pool* pool) {
    KD_EXPECTS(config.reps >= 1);
    validate_scenario(sc);
    const std::uint64_t balls =
        config.balls != 0 ? config.balls : resolved_balls(sc);
    KD_EXPECTS(balls >= 1);

    experiment_result out;
    out.reps.reserve(config.reps);
    for (std::uint32_t rep = 0; rep < config.reps; ++rep) {
        out.reps.push_back(run_scenario_repetition(
            sc, rng::derive_seed(config.seed, rep), balls, pool));
        accumulate_repetition(out, out.reps.back());
    }
    return out;
}

} // namespace

experiment_result run_scenario_experiment(const scenario& sc,
                                          const experiment_config& config) {
    return scenario_experiment(sc, config, nullptr);
}

experiment_result run_scenario_experiment(const scenario& sc,
                                          const experiment_config& config,
                                          thread_pool& pool) {
    return scenario_experiment(sc, config, &pool);
}

sweep_cell make_scenario_cell(std::string name, const scenario& sc,
                              experiment_config config) {
    validate_scenario(sc);
    if (config.balls == 0) {
        config.balls = resolved_balls(sc);
    }
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);

    sweep_cell cell;
    cell.name = std::move(name);
    cell.config = config;
    cell.metric = sc.metric;
    if (sc.warmup == warmup_mode::fast_forward) {
        // Resolve the fast-forward plan here for the same reason the
        // registry factory is copied below: repetition jobs on worker
        // threads must never consult the (unsynchronized) registry.
        const ff_plan plan = plan_fast_forward(sc);
        cell.run_rep = [sc, plan,
                        balls = config.balls](std::uint64_t derived_seed) {
            fast_forwarded_process process(sc, plan, derived_seed);
            process.run_balls(balls);
            return to_repetition_result(process.observe());
        };
        return cell;
    }
    const kernel_kind kernel = resolve_kernel(sc);
    // Copy the factory out of the registry here: repetition jobs on worker
    // threads never touch the (unsynchronized) registry.
    auto make = policy_registry::instance().at(resolved_policy(sc)).make;
    // Repetition jobs already saturate the pool, so a par=round cell runs
    // its sharded phases inline on the owning worker — the output is
    // byte-identical either way (that is the sharded kernel's contract).
    cell.run_rep = [sc, kernel, make = std::move(make),
                    balls = config.balls](std::uint64_t derived_seed) {
        auto process = make(sc, kernel, derived_seed);
        process.run_balls(balls);
        return to_repetition_result(process.observe());
    };
    return cell;
}

scenario scenario_from_cli(const arg_parser& args, scenario base) {
    const std::string text = args.get_string("scenario");
    if (text.empty()) {
        return base;
    }
    return parse_scenario(text, std::move(base));
}

} // namespace kdc::core
