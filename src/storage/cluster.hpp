// Distributed storage placement (Section 1.3 of the paper).
//
// A new file is replicated into k copies (or split into k chunks); the k
// replicas are stored on the k least loaded of d candidate servers chosen at
// random — one (k,d)-choice round per file. The paper's claims, measurable
// here:
//   * with d = k+1 and k = Theta(ln n), (k,d)-choice matches two-choice's
//     max load at roughly *half* of two-choice's message cost;
//   * retrieving all k chunks costs d = k+1 probes (the candidate set),
//     versus 2k for per-chunk two-choice.
//
// The model tracks server loads in replica units (all replicas equal size),
// per-file candidate sets (so search cost is honest: the reader re-derives
// the candidates and probes them), and supports failure injection for
// availability comparisons between replication and chunking.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::storage {

enum class placement_policy {
    kd_choice,            ///< one (k,d)-choice round per file
    per_replica_d_choice, ///< each replica independently least-of-d
    random,               ///< each replica to a uniform server
    batch_greedy          ///< Section 7 greedy variant over distinct probes
};

[[nodiscard]] const char* to_string(placement_policy policy) noexcept;

struct storage_config {
    std::uint64_t servers = 1024;
    std::uint64_t replicas_per_file = 3; ///< the paper's k
    /// Candidate servers probed: per *file* for kd_choice/batch_greedy, per
    /// *replica* for per_replica_d_choice.
    std::uint64_t probes = 4;
    placement_policy policy = placement_policy::kd_choice;
    std::uint64_t seed = 1;

    void validate() const;
};

/// Where one file ended up.
struct file_placement {
    std::vector<std::uint32_t> replicas;   ///< servers holding a copy/chunk
    std::vector<std::uint32_t> candidates; ///< probed candidate servers
};

class storage_cluster {
public:
    explicit storage_cluster(const storage_config& config);

    /// Places one file; returns its id.
    std::uint64_t place_file();

    /// Places `count` files.
    void place_files(std::uint64_t count);

    [[nodiscard]] const core::load_vector& server_loads() const noexcept {
        return loads_;
    }
    [[nodiscard]] std::uint64_t files_placed() const noexcept {
        return placements_.size();
    }
    /// Probe messages spent on placement so far.
    [[nodiscard]] std::uint64_t placement_messages() const noexcept {
        return placement_messages_;
    }
    [[nodiscard]] const file_placement& placement(std::uint64_t file) const {
        KD_EXPECTS(file < placements_.size());
        return placements_[file];
    }

    /// Messages needed to locate and confirm all k replicas of a file: the
    /// reader probes the file's candidate set. For kd_choice that is d
    /// messages; for per-replica policies it is (per-replica candidates)*k.
    [[nodiscard]] std::uint64_t search_cost(std::uint64_t file) const;

    /// Monte-Carlo availability estimate: each server fails independently
    /// with probability `fail_prob`. If `need_all` (chunking), the file
    /// needs every distinct replica server alive; otherwise (replication)
    /// one alive server suffices. Returns the fraction of (file, trial)
    /// pairs available.
    [[nodiscard]] double estimate_availability(double fail_prob, bool need_all,
                                               std::uint32_t trials,
                                               std::uint64_t seed) const;

    /// Erasure-coded availability: a file with k stored chunks is available
    /// iff at least `min_alive` of them sit on alive servers (an (m, k)
    /// MDS code with m = min_alive data chunks). min_alive = 1 reproduces
    /// replication; min_alive = k reproduces plain chunking.
    [[nodiscard]] double
    estimate_availability_erasure(double fail_prob, std::uint64_t min_alive,
                                  std::uint32_t trials,
                                  std::uint64_t seed) const;

    [[nodiscard]] const storage_config& config() const noexcept {
        return config_;
    }

private:
    void place_kd_choice(file_placement& out);
    void place_per_replica(file_placement& out);
    void place_random(file_placement& out);
    void place_batch_greedy(file_placement& out);

    storage_config config_;
    core::load_vector loads_;
    std::vector<file_placement> placements_;
    std::uint64_t placement_messages_ = 0;
    std::vector<std::uint32_t> probe_buffer_;
    rng::xoshiro256ss gen_;
};

} // namespace kdc::storage
