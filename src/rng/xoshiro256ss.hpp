// xoshiro256** 1.0 (Blackman & Vigna, 2018; public-domain reference
// implementation at https://prng.di.unimi.it/xoshiro256starstar.c).
//
// This is the workhorse generator for every simulation in the repository:
// 256 bits of state, period 2^256-1, passes BigCrush, and ~1ns per draw.
// `jump()`/`long_jump()` advance by 2^128 / 2^192 steps for building
// non-overlapping parallel streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"

namespace kdc::rng {

class xoshiro256ss {
public:
    using result_type = std::uint64_t;

    /// Seeds the 256-bit state by running SplitMix64 from `seed`, as
    /// recommended by the xoshiro authors (never seeds the all-zero state).
    constexpr explicit xoshiro256ss(std::uint64_t seed = 0) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) {
            word = splitmix64_next(sm);
        }
    }

    /// Constructs from explicit state words. The state must not be all zero.
    constexpr explicit xoshiro256ss(
        const std::array<std::uint64_t, 4>& state) noexcept
        : state_(state) {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /// Advances the state by 2^128 steps: up to 2^128 subsequences that never
    /// overlap, for parallel repetitions.
    constexpr void jump() noexcept {
        apply_jump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                    0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL});
    }

    /// Advances the state by 2^192 steps, for distributing work across
    /// machines (2^64 starting points, each with 2^64 jump() streams).
    constexpr void long_jump() noexcept {
        apply_jump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                    0x77710069854ee241ULL, 0x39109bb02acbe635ULL});
    }

    [[nodiscard]] constexpr const std::array<std::uint64_t, 4>&
    state() const noexcept {
        return state_;
    }

    friend constexpr bool operator==(const xoshiro256ss&,
                                     const xoshiro256ss&) noexcept = default;

private:
    std::array<std::uint64_t, 4> state_{};

    [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                      int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    constexpr void apply_jump(
        const std::array<std::uint64_t, 4>& table) noexcept {
        std::array<std::uint64_t, 4> acc{};
        for (const std::uint64_t word : table) {
            for (int bit = 0; bit < 64; ++bit) {
                if ((word & (std::uint64_t{1} << bit)) != 0) {
                    for (std::size_t i = 0; i < acc.size(); ++i) {
                        acc[i] ^= state_[i];
                    }
                }
                (void)(*this)();
            }
        }
        state_ = acc;
    }
};

} // namespace kdc::rng
