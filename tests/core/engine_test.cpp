#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/process.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "stats/running_stats.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::cell_plan;
using kdc::core::confidence_reached;
using kdc::core::confidence_width_rule;
using kdc::core::fixed_reps_rule;
using kdc::core::make_sweep_cell;
using kdc::core::monitored_value;
using kdc::core::resolve_cell_plan;
using kdc::core::run_engine_grid;
using kdc::core::run_sweep;
using kdc::core::stopping_mode;
using kdc::core::stopping_rule;
using kdc::core::sweep_options;
using kdc::core::thread_pool;

/// A deterministic synthetic workload: value(cell, rep) is a fixed function
/// of its indices, so any engine schedule must reproduce it exactly. Cell
/// variance is controlled per cell: `spread[c]` scales an alternating
/// +/- deviation that decays with the repetition index, giving high-variance
/// cells a genuine reason to run longer than low-variance ones.
double synthetic_value(std::size_t cell, std::uint32_t rep, double spread) {
    const double wobble = (rep % 2 == 0 ? 1.0 : -1.0) * spread /
                          (1.0 + 0.25 * static_cast<double>(rep));
    return 10.0 * static_cast<double>(cell + 1) + wobble;
}

/// Serial reference of the engine's adaptive loop: fold in rep order, decide
/// at chunk boundaries. The engine must agree with this at EVERY thread
/// count — the decision sequence is pure once the fold order is fixed.
std::vector<double> serial_adaptive_reference(std::size_t cell, double spread,
                                              std::uint32_t configured,
                                              const stopping_rule& rule) {
    const cell_plan plan = resolve_cell_plan(rule, configured);
    std::vector<double> values;
    kdc::stats::running_stats monitor;
    std::uint32_t scheduled = plan.first_chunk;
    for (;;) {
        while (values.size() < scheduled) {
            const auto rep = static_cast<std::uint32_t>(values.size());
            values.push_back(synthetic_value(cell, rep, spread));
            monitor.push(values.back());
        }
        if (scheduled >= plan.max_reps ||
            confidence_reached(monitor, rule)) {
            return values;
        }
        scheduled = std::min<std::uint32_t>(plan.max_reps,
                                            scheduled + plan.chunk);
    }
}

TEST(SweepEngine, AdaptiveMatchesSerialReferenceAtAnyThreadCount) {
    // Three cells with very different variances under one rule: the engine
    // must execute exactly the repetition counts (and values) the serial
    // rep-order fold dictates, regardless of the worker count.
    const std::vector<double> spreads{0.0, 3.0, 12.0};
    const std::uint32_t configured = 64;
    const auto rule = confidence_width_rule(/*ci_half_width=*/0.8,
                                            /*min_reps=*/3, /*max_reps=*/64);
    std::vector<std::vector<double>> reference;
    for (std::size_t c = 0; c < spreads.size(); ++c) {
        reference.push_back(
            serial_adaptive_reference(c, spreads[c], configured, rule));
    }
    const std::vector<std::uint32_t> reps(spreads.size(), configured);
    for (const unsigned threads : {1u, 2u, 8u}) {
        thread_pool pool(threads);
        const auto grid = run_engine_grid<double>(
            pool, reps,
            [&spreads](std::size_t c, std::uint32_t rep) {
                return synthetic_value(c, rep, spreads[c]);
            },
            [](std::size_t, const double& value) { return value; }, rule);
        ASSERT_EQ(grid.size(), reference.size());
        for (std::size_t c = 0; c < grid.size(); ++c) {
            EXPECT_EQ(grid[c], reference[c])
                << "cell " << c << " at " << threads << " threads";
        }
    }
}

TEST(SweepEngine, LowVarianceStopsAtFloorHighVarianceRunsLonger) {
    const std::vector<std::uint32_t> reps{64, 64};
    thread_pool pool(4);
    const auto rule = confidence_width_rule(/*ci_half_width=*/0.5,
                                            /*min_reps=*/4, /*max_reps=*/64);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t c, std::uint32_t rep) {
            // Cell 0 is constant; cell 1 swings +/- 20.
            return synthetic_value(c, rep, c == 0 ? 0.0 : 20.0);
        },
        [](std::size_t, const double& value) { return value; }, rule);
    EXPECT_EQ(grid[0].size(), 4u); // zero variance: stop at the floor
    EXPECT_GT(grid[1].size(), 4u); // needs more data than the floor
    EXPECT_LE(grid[1].size(), 64u);
}

TEST(SweepEngine, UnreachableTargetRunsToCap) {
    const std::vector<std::uint32_t> reps{10};
    thread_pool pool(2);
    const auto rule = confidence_width_rule(/*ci_half_width=*/1e-12,
                                            /*min_reps=*/2, /*max_reps=*/17);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t, std::uint32_t rep) {
            return synthetic_value(0, rep, 5.0);
        },
        [](std::size_t, const double& value) { return value; }, rule);
    EXPECT_EQ(grid[0].size(), 17u);
}

TEST(SweepEngine, CapDefaultsToConfiguredReps) {
    // max_reps = 0 means "the cell's configured repetition count".
    const std::vector<std::uint32_t> reps{7};
    thread_pool pool(2);
    const auto rule = confidence_width_rule(/*ci_half_width=*/1e-12,
                                            /*min_reps=*/2, /*max_reps=*/0);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t, std::uint32_t rep) {
            return synthetic_value(0, rep, 5.0);
        },
        [](std::size_t, const double& value) { return value; }, rule);
    EXPECT_EQ(grid[0].size(), 7u);
}

TEST(SweepEngine, HugeRepCapDoesNotPreallocateTheCap) {
    // Slots must exist per scheduled chunk only: a generous target with
    // --max-reps=1e6 stops at the floor and must not have sized the result
    // vector (or its capacity) anywhere near the cap.
    const std::vector<std::uint32_t> reps{8};
    thread_pool pool(2);
    const auto rule = confidence_width_rule(/*ci_half_width=*/1e6,
                                            /*min_reps=*/2,
                                            /*max_reps=*/1'000'000);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t, std::uint32_t rep) {
            return static_cast<double>(rep % 2);
        },
        [](std::size_t, const double& value) { return value; }, rule);
    EXPECT_EQ(grid[0].size(), 2u);
    EXPECT_LT(grid[0].capacity(), 1'000'000u);
}

TEST(SweepEngine, FixedModeIgnoresMetricAndRunsEverything) {
    const std::vector<std::uint32_t> reps{5, 3};
    thread_pool pool(4);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t c, std::uint32_t rep) {
            return synthetic_value(c, rep, 1.0);
        },
        [](std::size_t, const double&) -> double {
            throw std::logic_error("metric must not run under fixed_reps");
        },
        fixed_reps_rule());
    EXPECT_EQ(grid[0].size(), 5u);
    EXPECT_EQ(grid[1].size(), 3u);
}

TEST(SweepEngine, AdaptiveSweepIsBitIdenticalAcrossThreadCountsOnRealCells) {
    // End-to-end through run_sweep on real allocation processes: executed
    // repetition counts and every aggregate must agree across thread counts.
    auto build_cells = [] {
        std::vector<kdc::core::sweep_cell> cells;
        cells.push_back(make_sweep_cell(
            "kd(2,4)", {.balls = 128, .reps = 24, .seed = 11},
            [](std::uint64_t s) {
                return kdc::core::kd_choice_process(128, 2, 4, s);
            }));
        cells.push_back(make_sweep_cell(
            "single", {.balls = 96, .reps = 24, .seed = 5},
            [](std::uint64_t s) {
                return kdc::core::single_choice_process(96, s);
            }));
        return cells;
    };
    sweep_options baseline;
    baseline.threads = 1;
    baseline.stopping = confidence_width_rule(/*ci_half_width=*/0.6,
                                              /*min_reps=*/3);
    const auto reference = run_sweep(build_cells(), baseline);
    for (const unsigned threads : {2u, 8u}) {
        sweep_options options = baseline;
        options.threads = threads;
        const auto outcomes = run_sweep(build_cells(), options);
        ASSERT_EQ(outcomes.size(), reference.size());
        for (std::size_t c = 0; c < outcomes.size(); ++c) {
            ASSERT_EQ(outcomes[c].result.reps.size(),
                      reference[c].result.reps.size());
            for (std::size_t r = 0; r < reference[c].result.reps.size();
                 ++r) {
                EXPECT_EQ(outcomes[c].result.reps[r].max_load,
                          reference[c].result.reps[r].max_load);
            }
            EXPECT_EQ(outcomes[c].result.max_load_stats.mean(),
                      reference[c].result.max_load_stats.mean());
            EXPECT_EQ(outcomes[c].result.gap_stats.mean(),
                      reference[c].result.gap_stats.mean());
        }
    }
}

TEST(SweepEngine, AdaptiveRepsAreAPrefixOfTheFixedRun) {
    // The adaptive engine must not change WHAT a repetition computes — only
    // how many run. Every executed rep equals the same-index rep of the
    // fixed-mode run (same derived seeds, same fold order).
    std::vector<kdc::core::sweep_cell> cells;
    cells.push_back(make_sweep_cell(
        "3-choice", {.balls = 200, .reps = 16, .seed = 23},
        [](std::uint64_t s) {
            return kdc::core::d_choice_process(200, 3, s);
        }));
    const auto fixed = run_sweep(cells, {});
    sweep_options options;
    options.stopping = confidence_width_rule(/*ci_half_width=*/1.0,
                                             /*min_reps=*/2);
    const auto adaptive = run_sweep(cells, options);
    ASSERT_EQ(adaptive.size(), 1u);
    const auto& fixed_reps = fixed[0].result.reps;
    const auto& adaptive_reps = adaptive[0].result.reps;
    ASSERT_LE(adaptive_reps.size(), fixed_reps.size());
    ASSERT_GE(adaptive_reps.size(), 2u);
    for (std::size_t r = 0; r < adaptive_reps.size(); ++r) {
        EXPECT_EQ(adaptive_reps[r].max_load, fixed_reps[r].max_load) << r;
        EXPECT_EQ(adaptive_reps[r].gap, fixed_reps[r].gap) << r;
        EXPECT_EQ(adaptive_reps[r].messages, fixed_reps[r].messages) << r;
    }
}

TEST(SweepEngine, ExceptionUnderAdaptiveRulePropagatesAndPoolSurvives) {
    const std::vector<std::uint32_t> reps{32};
    thread_pool pool(4);
    const auto rule = confidence_width_rule(/*ci_half_width=*/1e-12,
                                            /*min_reps=*/2, /*max_reps=*/32);
    EXPECT_THROW(
        (void)run_engine_grid<double>(
            pool, reps,
            [](std::size_t, std::uint32_t rep) -> double {
                if (rep >= 6) {
                    throw std::runtime_error("mid-run failure");
                }
                return static_cast<double>(rep);
            },
            [](std::size_t, const double& value) { return value; }, rule),
        std::runtime_error);
    // The engine drained before rethrowing; the pool keeps working.
    const auto grid = run_engine_grid<double>(
        pool, reps, [](std::size_t, std::uint32_t rep) {
            return static_cast<double>(rep);
        },
        [](std::size_t, const double& value) { return value; }, fixed_reps_rule());
    EXPECT_EQ(grid[0].size(), 32u);
}

TEST(SweepEngine, ThrowingMetricIsCapturedLikeAFailingRepetition) {
    const std::vector<std::uint32_t> reps{8};
    thread_pool pool(2);
    const auto rule = confidence_width_rule(/*ci_half_width=*/0.5,
                                            /*min_reps=*/2, /*max_reps=*/8);
    EXPECT_THROW((void)run_engine_grid<double>(
                     pool, reps,
                     [](std::size_t, std::uint32_t rep) {
                         return static_cast<double>(rep);
                     },
                     [](std::size_t, const double&) -> double {
                         throw std::runtime_error("metric failed");
                     },
                     rule),
                 std::runtime_error);
}

TEST(SweepEngine, ResolvesCellPlans) {
    const auto fixed = resolve_cell_plan(fixed_reps_rule(), 12);
    EXPECT_EQ(fixed.first_chunk, 12u);
    EXPECT_EQ(fixed.max_reps, 12u);
    EXPECT_FALSE(fixed.adaptive);

    const auto adaptive =
        resolve_cell_plan(confidence_width_rule(0.5, 6, 40), 12);
    EXPECT_TRUE(adaptive.adaptive);
    EXPECT_EQ(adaptive.first_chunk, 6u);
    EXPECT_EQ(adaptive.max_reps, 40u);
    EXPECT_EQ(adaptive.chunk, 3u); // default: max(1, floor / 2)

    // Defaults: floor 3, cap = configured reps.
    const auto defaults = resolve_cell_plan(confidence_width_rule(0.5), 10);
    EXPECT_EQ(defaults.first_chunk, 3u);
    EXPECT_EQ(defaults.max_reps, 10u);

    // A floor above the cap clamps to the cap (single chunk).
    const auto clamped =
        resolve_cell_plan(confidence_width_rule(0.5, 8), 4);
    EXPECT_EQ(clamped.first_chunk, 4u);
    EXPECT_EQ(clamped.max_reps, 4u);
}

TEST(SweepEngine, RejectsInvalidRules) {
    stopping_rule rule;
    rule.mode = stopping_mode::confidence_width;
    rule.ci_half_width = 0.0; // must be positive
    EXPECT_THROW(kdc::core::validate_stopping_rule(rule),
                 kdc::contract_violation);
    EXPECT_THROW((void)confidence_width_rule(-1.0), kdc::contract_violation);
    EXPECT_THROW((void)confidence_width_rule(0.5, 1), // floor below 2
                 kdc::contract_violation);
    EXPECT_THROW((void)confidence_width_rule(0.5, 8, 4), // floor > cap
                 kdc::contract_violation);
    EXPECT_THROW((void)confidence_width_rule(0.5, 2, 0, 1.0), // confidence
                 kdc::contract_violation);
    EXPECT_NO_THROW(kdc::core::validate_stopping_rule(fixed_reps_rule()));
}

TEST(SweepEngine, RelativeWidthRuleScalesTheTargetWithTheMean) {
    // Same spread, very different means: a mean-scaled target stops the
    // large-mean cell early while the small-mean cell has to keep going.
    kdc::stats::running_stats small_mean;
    kdc::stats::running_stats large_mean;
    for (const double deviation : {-1.0, 1.0, -1.0, 1.0}) {
        small_mean.push(2.0 + deviation);
        large_mean.push(1000.0 + deviation);
    }
    const auto rule = kdc::core::relative_width_rule(/*ci_rel=*/0.05);
    EXPECT_FALSE(confidence_reached(small_mean, rule)); // 0.05*2 is tiny
    EXPECT_TRUE(confidence_reached(large_mean, rule));  // 0.05*1000 = 50

    // The absolute rule with the same nominal number reads it as an
    // absolute half-width and treats both cells identically.
    const auto absolute = confidence_width_rule(0.05);
    EXPECT_FALSE(confidence_reached(small_mean, absolute));
    EXPECT_FALSE(confidence_reached(large_mean, absolute));
}

TEST(SweepEngine, RelativeWidthRuleIsValidatedLikeTheAbsoluteOne) {
    EXPECT_THROW((void)kdc::core::relative_width_rule(0.0),
                 kdc::contract_violation);
    EXPECT_THROW((void)kdc::core::relative_width_rule(-0.1),
                 kdc::contract_violation);
    // Exactly one target: both set (or neither) is invalid.
    stopping_rule both;
    both.mode = stopping_mode::confidence_width;
    both.ci_half_width = 0.5;
    both.ci_rel = 0.1;
    EXPECT_THROW(kdc::core::validate_stopping_rule(both),
                 kdc::contract_violation);
    stopping_rule neither;
    neither.mode = stopping_mode::confidence_width;
    EXPECT_THROW(kdc::core::validate_stopping_rule(neither),
                 kdc::contract_violation);
    EXPECT_NO_THROW(kdc::core::validate_stopping_rule(
        kdc::core::relative_width_rule(0.1, 2, 40)));
}

TEST(SweepEngine, StoppingRuleFromCliReadsCiRel) {
    auto parse_rule = [](std::vector<const char*> argv) {
        kdc::arg_parser args;
        args.add_adaptive_options();
        argv.insert(argv.begin(), "bench");
        if (!args.parse(static_cast<int>(argv.size()), argv.data())) {
            throw std::runtime_error("unexpected --help");
        }
        return kdc::core::stopping_rule_from_cli(args);
    };
    const auto relative = parse_rule({"--adaptive", "--ci-rel=0.1"});
    EXPECT_EQ(relative.mode, stopping_mode::confidence_width);
    EXPECT_DOUBLE_EQ(relative.ci_rel, 0.1);
    EXPECT_DOUBLE_EQ(relative.ci_half_width, 0.0);

    const auto absolute = parse_rule({"--adaptive", "--ci-width=0.4"});
    EXPECT_DOUBLE_EQ(absolute.ci_half_width, 0.4);
    EXPECT_DOUBLE_EQ(absolute.ci_rel, 0.0);

    // Validation mirrors --ci-width: garbage, zero, negative and
    // non-finite values are precise cli_errors, and the two targets are
    // mutually exclusive.
    EXPECT_THROW((void)parse_rule({"--adaptive", "--ci-rel=abc"}),
                 kdc::cli_error);
    EXPECT_THROW((void)parse_rule({"--adaptive", "--ci-rel=0"}),
                 kdc::cli_error);
    EXPECT_THROW((void)parse_rule({"--adaptive", "--ci-rel=-1"}),
                 kdc::cli_error);
    EXPECT_THROW((void)parse_rule({"--adaptive", "--ci-rel=inf"}),
                 kdc::cli_error);
    EXPECT_THROW((void)parse_rule({"--adaptive", "--ci-rel=1e999"}),
                 kdc::cli_error);
    EXPECT_THROW(
        (void)parse_rule({"--adaptive", "--ci-rel=0.1", "--ci-width=0.4"}),
        kdc::cli_error);
}

TEST(SweepEngine, PerCellMetricDrivesAdaptiveStopping) {
    // Two identical cells except for the monitored metric: the max-load
    // monitor sees zero spread (every rep hits the same max load) and
    // stops at the floor; the messages monitor sees the same constancy
    // too, but a gap monitor with a wide target also stops at the floor —
    // exercise that the per-cell dispatch actually reads cell.metric.
    using kdc::core::make_scenario_cell;
    using kdc::core::parse_scenario;
    const auto max_cell = make_scenario_cell(
        "max", parse_scenario("single:n=64,metric=max_load,kernel=perbin"),
        {.balls = 64, .reps = 12, .seed = 5});
    auto gap_sc = parse_scenario("single:n=64,metric=gap,kernel=perbin");
    const auto gap_cell = make_scenario_cell(
        "gap", gap_sc, {.balls = 64, .reps = 12, .seed = 5});
    EXPECT_EQ(max_cell.metric, kdc::core::metric_kind::max_load);
    EXPECT_EQ(gap_cell.metric, kdc::core::metric_kind::gap);

    sweep_options options;
    options.threads = 2;
    options.stopping = confidence_width_rule(/*ci_half_width=*/1e9, 2, 12);
    const auto outcomes =
        run_sweep({max_cell, gap_cell}, options);
    ASSERT_EQ(outcomes.size(), 2u);
    // A huge target stops both at the floor; the point is that dispatch
    // through different metrics runs without touching the wrong field.
    EXPECT_EQ(outcomes[0].result.reps.size(), 2u);
    EXPECT_EQ(outcomes[1].result.reps.size(), 2u);
    // monitored_value itself picks the right field.
    kdc::core::repetition_result rep;
    rep.max_load = 7;
    rep.gap = 2.5;
    rep.messages = 99;
    EXPECT_DOUBLE_EQ(
        monitored_value(kdc::core::metric_kind::max_load, rep), 7.0);
    EXPECT_DOUBLE_EQ(monitored_value(kdc::core::metric_kind::gap, rep), 2.5);
    EXPECT_DOUBLE_EQ(
        monitored_value(kdc::core::metric_kind::messages, rep), 99.0);
}

TEST(SweepEngine, ProgressTotalIsTheCapAndCompletionMayStopShort) {
    // Adaptive progress reports against the maximum possible job count; a
    // cell that stops early simply never reaches it.
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    const std::vector<std::uint32_t> reps{6};
    thread_pool pool(2);
    const auto rule = confidence_width_rule(/*ci_half_width=*/100.0,
                                            /*min_reps=*/2, /*max_reps=*/6);
    const auto grid = run_engine_grid<double>(
        pool, reps,
        [](std::size_t, std::uint32_t rep) {
            return static_cast<double>(rep % 2);
        },
        [](std::size_t, const double& value) { return value; }, rule,
        [&calls](std::size_t done, std::size_t total) {
            calls.emplace_back(done, total);
        });
    EXPECT_EQ(grid[0].size(), 2u); // generous target: stop at the floor
    ASSERT_EQ(calls.size(), 2u);
    for (std::size_t i = 0; i < calls.size(); ++i) {
        EXPECT_EQ(calls[i].first, i + 1);
        EXPECT_EQ(calls[i].second, 6u); // the cap, not the executed count
    }
}

} // namespace
