#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using kdc::sched::cluster_scheduler;
using kdc::sched::probe_strategy;
using kdc::sched::scheduler_config;
using kdc::sched::service_model;
using kdc::sched::simulate;

scheduler_config base_config() {
    scheduler_config config;
    config.workers = 32;
    config.jobs = 512;
    config.tasks_per_job = 4;
    config.probes = 8;
    config.arrival_rate = 4.0; // utilization 4*4*1/32 = 0.5
    config.mean_service = 1.0;
    config.service = service_model::exponential;
    config.strategy = probe_strategy::batch_kd_choice;
    config.seed = 1;
    return config;
}

TEST(SchedulerConfig, UtilizationFormula) {
    const auto config = base_config();
    EXPECT_DOUBLE_EQ(config.utilization(), 0.5);
}

TEST(SchedulerConfig, ValidationRejectsBadParameters) {
    auto config = base_config();
    config.probes = 0;
    EXPECT_THROW(config.validate(), kdc::contract_violation);

    config = base_config();
    config.probes = 64; // > workers
    EXPECT_THROW(config.validate(), kdc::contract_violation);

    config = base_config();
    config.strategy = probe_strategy::batch_kd_choice;
    config.probes = 4; // == tasks_per_job, need strictly more
    EXPECT_THROW(config.validate(), kdc::contract_violation);

    config = base_config();
    config.strategy = probe_strategy::per_task_d_choice;
    config.probes = 4; // fine for per-task
    EXPECT_NO_THROW(config.validate());
}

TEST(Scheduler, AllJobsComplete) {
    const auto result = simulate(base_config());
    EXPECT_EQ(result.tasks_completed, 512u * 4u);
    EXPECT_EQ(result.response_time.count, 512u);
    EXPECT_GT(result.makespan, 0.0);
}

TEST(Scheduler, ResponseTimeAtLeastMaxServiceOfJob) {
    // Deterministic service 1.0 and parallel tasks: every job takes >= 1.0.
    auto config = base_config();
    config.service = service_model::deterministic;
    const auto result = simulate(config);
    EXPECT_GE(result.response_time.min, 1.0 - 1e-9);
}

TEST(Scheduler, DeterministicUnderSeed) {
    const auto a = simulate(base_config());
    const auto b = simulate(base_config());
    EXPECT_DOUBLE_EQ(a.response_time.mean, b.response_time.mean);
    EXPECT_EQ(a.probe_messages, b.probe_messages);
}

TEST(Scheduler, ProbeAccountingPerStrategy) {
    auto config = base_config();

    config.strategy = probe_strategy::batch_kd_choice;
    EXPECT_EQ(simulate(config).probe_messages, 512u * 8u);

    config.strategy = probe_strategy::batch_greedy;
    EXPECT_EQ(simulate(config).probe_messages, 512u * 8u);

    config.strategy = probe_strategy::per_task_d_choice;
    // k tasks * d probes each.
    EXPECT_EQ(simulate(config).probe_messages, 512u * 4u * 8u);

    config.strategy = probe_strategy::random_worker;
    EXPECT_EQ(simulate(config).probe_messages, 0u);
}

TEST(Scheduler, BatchKdBeatsRandomOnResponseTime) {
    auto config = base_config();
    config.arrival_rate = 6.0; // utilization 0.75: contention matters
    config.strategy = probe_strategy::batch_kd_choice;
    const auto kd = simulate(config);
    config.strategy = probe_strategy::random_worker;
    const auto random = simulate(config);
    EXPECT_LT(kd.response_time.mean, random.response_time.mean);
}

TEST(Scheduler, SharedProbesBeatPerTaskAtEqualMessageBudget) {
    // The paper's Section 1.3 claim: k tasks sharing d probes beat k tasks
    // each using d/k probes (equal total message cost).
    auto config = base_config();
    config.arrival_rate = 6.0;
    config.tasks_per_job = 4;

    config.strategy = probe_strategy::batch_kd_choice;
    config.probes = 8; // 8 probes per job
    const auto shared = simulate(config);

    config.strategy = probe_strategy::per_task_d_choice;
    config.probes = 2; // 4 tasks * 2 = 8 probes per job
    const auto per_task = simulate(config);

    EXPECT_EQ(shared.probe_messages, per_task.probe_messages);
    EXPECT_LT(shared.response_time.mean, per_task.response_time.mean);
}

TEST(Scheduler, SubmitJobValidatesTaskCount) {
    cluster_scheduler scheduler(base_config());
    EXPECT_THROW((void)scheduler.submit_job({1.0}), kdc::contract_violation);
}

TEST(Scheduler, ExplicitJobsRunToCompletion) {
    auto config = base_config();
    config.strategy = probe_strategy::batch_kd_choice;
    cluster_scheduler scheduler(config);
    (void)scheduler.submit_job({1.0, 2.0, 3.0, 4.0});
    scheduler.drain();
    ASSERT_EQ(scheduler.response_times().size(), 1u);
    // Parallel tasks on an idle cluster: response = slowest task = 4.
    EXPECT_DOUBLE_EQ(scheduler.response_times()[0], 4.0);
}

TEST(Scheduler, QueueLengthsReturnToZeroAfterDrain) {
    auto config = base_config();
    cluster_scheduler scheduler(config);
    (void)scheduler.submit_job({1.0, 1.0, 1.0, 1.0});
    scheduler.drain();
    for (const auto q : scheduler.queue_lengths()) {
        EXPECT_EQ(q, 0u);
    }
}

TEST(Scheduler, TwoJobsOnTinyClusterQueueFifo) {
    scheduler_config config;
    config.workers = 2;
    config.jobs = 2;
    config.tasks_per_job = 2;
    config.probes = 2;
    config.arrival_rate = 1.0;
    config.service = service_model::deterministic;
    config.mean_service = 1.0;
    config.strategy = probe_strategy::random_worker;
    config.seed = 3;
    cluster_scheduler scheduler(config);
    // Two jobs of two unit tasks on two workers, submitted back-to-back at
    // t=0: total work is 4 units over 2 workers => makespan exactly 2 if
    // placement spreads, more if it collides; either way both jobs finish.
    (void)scheduler.submit_job({1.0, 1.0});
    (void)scheduler.submit_job({1.0, 1.0});
    scheduler.drain();
    EXPECT_EQ(scheduler.response_times().size(), 2u);
    EXPECT_GE(scheduler.clock().now(), 1.0);
    EXPECT_LE(scheduler.clock().now(), 4.0);
}

TEST(Scheduler, StragglerEffectGrowsWithParallelism) {
    // A job's response is the max over its tasks, so at fixed utilization
    // mean response grows with k under random placement.
    auto config = base_config();
    config.strategy = probe_strategy::random_worker;
    config.workers = 64;

    config.tasks_per_job = 2;
    config.arrival_rate = 8.0; // utilization 0.25
    const auto k2 = simulate(config);

    config.tasks_per_job = 8;
    config.arrival_rate = 2.0; // same utilization
    const auto k8 = simulate(config);

    EXPECT_GT(k8.response_time.mean, k2.response_time.mean);
}

TEST(Scheduler, StrategyNames) {
    EXPECT_STREQ(kdc::sched::to_string(probe_strategy::batch_kd_choice),
                 "(k,d)-choice");
    EXPECT_STREQ(kdc::sched::to_string(probe_strategy::random_worker),
                 "random");
}

} // namespace
