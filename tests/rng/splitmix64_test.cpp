#include "rng/splitmix64.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using kdc::rng::derive_seed;
using kdc::rng::splitmix64;
using kdc::rng::splitmix64_next;

// Reference outputs for state 0, widely published with the SplitMix64
// reference implementation.
TEST(SplitMix64, MatchesReferenceVectorFromSeedZero) {
    splitmix64 gen(0);
    EXPECT_EQ(gen(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(gen(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(gen(), 0x06c45d188009454fULL);
    EXPECT_EQ(gen(), 0xf88bb8a8724c81ecULL);
    EXPECT_EQ(gen(), 0x1b39896a51a8749bULL);
}

TEST(SplitMix64, FreeFunctionMatchesClass) {
    std::uint64_t state = 12345;
    splitmix64 gen(12345);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(splitmix64_next(state), gen());
    }
}

TEST(SplitMix64, DeterministicForEqualSeeds) {
    splitmix64 a(42);
    splitmix64 b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    splitmix64 a(1);
    splitmix64 b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        equal += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(equal, 2);
}

TEST(SplitMix64, StateAdvancesByGoldenGamma) {
    splitmix64 gen(7);
    (void)gen();
    EXPECT_EQ(gen.state(), 7 + 0x9e3779b97f4a7c15ULL);
}

TEST(SplitMix64, IsConstexprUsable) {
    constexpr auto value = [] {
        std::uint64_t state = 0;
        return splitmix64_next(state);
    }();
    static_assert(value == 0xe220a8397b1dcdafULL);
    EXPECT_EQ(value, 0xe220a8397b1dcdafULL);
}

TEST(DeriveSeed, StreamsAreDistinct) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t stream = 0; stream < 4096; ++stream) {
        seeds.insert(derive_seed(99, stream));
    }
    EXPECT_EQ(seeds.size(), 4096u);
}

TEST(DeriveSeed, MastersAreDistinct) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t master = 0; master < 4096; ++master) {
        seeds.insert(derive_seed(master, 0));
    }
    EXPECT_EQ(seeds.size(), 4096u);
}

TEST(DeriveSeed, AdjacentMasterStreamPairsDoNotCollide) {
    // (master, stream+1) vs (master+1, stream) is the classic collision trap
    // for additive schemes.
    for (std::uint64_t m = 0; m < 256; ++m) {
        EXPECT_NE(derive_seed(m, 1), derive_seed(m + 1, 0));
    }
}

TEST(DeriveSeed, Deterministic) {
    EXPECT_EQ(derive_seed(5, 9), derive_seed(5, 9));
}

} // namespace
