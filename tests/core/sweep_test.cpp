#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/process.hpp"
#include "core/runner.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::experiment_config;
using kdc::core::experiment_result;
using kdc::core::make_sweep_cell;
using kdc::core::run_experiment;
using kdc::core::run_grid;
using kdc::core::run_sweep;
using kdc::core::sweep_cell;
using kdc::core::sweep_emitter;
using kdc::core::sweep_options;
using kdc::core::sweep_outcome;
using kdc::core::thread_pool;

/// Bitwise equality of a sweep outcome against the serial runner's result
/// for the same cell: per-rep observations and every floating-point
/// aggregate must match exactly (any fold-order difference would perturb the
/// running_stats accumulators).
void expect_identical(const experiment_result& serial,
                      const experiment_result& swept) {
    ASSERT_EQ(serial.reps.size(), swept.reps.size());
    for (std::size_t i = 0; i < serial.reps.size(); ++i) {
        EXPECT_EQ(serial.reps[i].max_load, swept.reps[i].max_load) << i;
        EXPECT_EQ(serial.reps[i].gap, swept.reps[i].gap) << i;
        EXPECT_EQ(serial.reps[i].messages, swept.reps[i].messages) << i;
        EXPECT_EQ(serial.reps[i].empty_bins, swept.reps[i].empty_bins) << i;
    }
    EXPECT_EQ(serial.max_load_set(), swept.max_load_set());
    EXPECT_EQ(serial.max_load_stats.mean(), swept.max_load_stats.mean());
    EXPECT_EQ(serial.gap_stats.mean(), swept.gap_stats.mean());
    EXPECT_EQ(serial.message_stats.mean(), swept.message_stats.mean());
    if (serial.reps.size() >= 2) { // variance needs two samples
        EXPECT_EQ(serial.max_load_stats.variance(),
                  swept.max_load_stats.variance());
        EXPECT_EQ(serial.gap_stats.variance(), swept.gap_stats.variance());
        EXPECT_EQ(serial.message_stats.variance(),
                  swept.message_stats.variance());
    }
}

/// sweep_options with only the thread count set.
sweep_options with_threads(unsigned threads) {
    sweep_options options;
    options.threads = threads;
    return options;
}

/// A mixed grid: different process types, per-cell seeds, ball counts, and
/// repetition counts, like the real benches build.
std::vector<sweep_cell> mixed_grid() {
    std::vector<sweep_cell> cells;
    cells.push_back(make_sweep_cell(
        "kd(2,4)", {.balls = 128, .reps = 7, .seed = 11},
        [](std::uint64_t s) {
            return kdc::core::kd_choice_process(128, 2, 4, s);
        }));
    cells.push_back(make_sweep_cell(
        "single", {.balls = 96, .reps = 3, .seed = 5},
        [](std::uint64_t s) {
            return kdc::core::single_choice_process(96, s);
        }));
    cells.push_back(make_sweep_cell(
        "3-choice", {.balls = 200, .reps = 5, .seed = 23},
        [](std::uint64_t s) {
            return kdc::core::d_choice_process(200, 3, s);
        }));
    cells.push_back(make_sweep_cell(
        "kd(3,9)", {.balls = 99, .reps = 4, .seed = 41},
        [](std::uint64_t s) {
            return kdc::core::kd_choice_process(120, 3, 9, s);
        }));
    return cells;
}

/// Serial reference: each cell's own run_rep replayed in repetition order on
/// one thread — exactly the fold the sweep promises to reproduce.
std::vector<experiment_result>
serial_reference(const std::vector<sweep_cell>& cells) {
    std::vector<experiment_result> results;
    for (const auto& cell : cells) {
        experiment_result out;
        out.reps.reserve(cell.config.reps);
        for (std::uint32_t rep = 0; rep < cell.config.reps; ++rep) {
            out.reps.push_back(cell.run_rep(
                kdc::rng::derive_seed(cell.config.seed, rep)));
            kdc::core::accumulate_repetition(out, out.reps.back());
        }
        results.push_back(std::move(out));
    }
    return results;
}

TEST(Sweep, CrossCellBitIdenticalAtOneTwoAndManyThreads) {
    const auto cells = mixed_grid();
    const auto reference = serial_reference(cells);
    for (const unsigned threads : {1u, 2u, 8u}) {
        const auto outcomes = run_sweep(cells, with_threads(threads));
        ASSERT_EQ(outcomes.size(), cells.size());
        for (std::size_t c = 0; c < cells.size(); ++c) {
            EXPECT_EQ(outcomes[c].name, cells[c].name);
            expect_identical(reference[c], outcomes[c].result);
        }
    }
}

TEST(Sweep, MatchesSerialRunExperimentPerCell) {
    // The documented contract: each cell's outcome is bit-identical to
    // run_experiment on the same config and factory.
    const experiment_config config{.balls = 150, .reps = 6, .seed = 77};
    const auto factory = [](std::uint64_t s) {
        return kdc::core::kd_choice_process(150, 3, 5, s);
    };
    const auto serial = run_experiment(config, factory);
    const auto outcomes = run_sweep(
        {make_sweep_cell("cell", config, factory)}, with_threads(4));
    ASSERT_EQ(outcomes.size(), 1u);
    expect_identical(serial, outcomes[0].result);
}

TEST(Sweep, SharedPoolAcrossSuccessiveSweeps) {
    const auto cells = mixed_grid();
    const auto reference = serial_reference(cells);
    thread_pool pool(4);
    for (int round = 0; round < 2; ++round) {
        const auto outcomes = run_sweep(pool, cells);
        ASSERT_EQ(outcomes.size(), cells.size());
        for (std::size_t c = 0; c < cells.size(); ++c) {
            expect_identical(reference[c], outcomes[c].result);
        }
    }
}

TEST(Sweep, EmptyGridReturnsEmpty) {
    EXPECT_TRUE(run_sweep({}).empty());
    thread_pool pool(2);
    EXPECT_TRUE(run_sweep(pool, {}).empty());
}

TEST(Sweep, ExceptionFromMidGridCellPropagates) {
    auto cells = mixed_grid();
    sweep_cell poison;
    poison.name = "poison";
    poison.config = {.balls = 32, .reps = 4, .seed = 3};
    poison.run_rep = [](std::uint64_t) -> kdc::core::repetition_result {
        throw std::runtime_error("mid-grid failure");
    };
    cells.insert(cells.begin() + 2, std::move(poison));
    thread_pool pool(4);
    EXPECT_THROW((void)run_sweep(pool, cells), std::runtime_error);
    // The grid drains before rethrow, so the pool stays usable.
    const auto cells_ok = mixed_grid();
    const auto reference = serial_reference(cells_ok);
    const auto outcomes = run_sweep(pool, cells_ok);
    ASSERT_EQ(outcomes.size(), cells_ok.size());
    for (std::size_t c = 0; c < cells_ok.size(); ++c) {
        expect_identical(reference[c], outcomes[c].result);
    }
}

TEST(Sweep, StealHeavyManySingleRepCells) {
    // Many 1-rep cells submitted round-robin across 8 deques: workers must
    // steal to stay busy, and the outcome order must still be cell order.
    std::vector<sweep_cell> cells;
    for (int c = 0; c < 40; ++c) {
        cells.push_back(make_sweep_cell(
            "cell-" + std::to_string(c),
            {.balls = 64 + static_cast<std::uint64_t>(c),
             .reps = 1,
             .seed = static_cast<std::uint64_t>(1000 + c)},
            [](std::uint64_t s) {
                return kdc::core::d_choice_process(256, 2, s);
            }));
    }
    const auto reference = serial_reference(cells);
    const auto outcomes = run_sweep(cells, with_threads(8));
    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        EXPECT_EQ(outcomes[c].name, cells[c].name);
        expect_identical(reference[c], outcomes[c].result);
    }
}

TEST(Sweep, ProgressReportsEveryJobMonotonically) {
    const auto cells = mixed_grid();
    std::size_t expected_total = 0;
    for (const auto& cell : cells) {
        expected_total += cell.config.reps;
    }
    // The engine serializes progress calls; collect without extra locking.
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    sweep_options options;
    options.threads = 4;
    options.progress = [&calls](std::size_t done, std::size_t total) {
        calls.emplace_back(done, total);
    };
    (void)run_sweep(cells, options);
    ASSERT_EQ(calls.size(), expected_total);
    for (std::size_t i = 0; i < calls.size(); ++i) {
        EXPECT_EQ(calls[i].first, i + 1);
        EXPECT_EQ(calls[i].second, expected_total);
    }
}

TEST(Sweep, RejectsInvalidCells) {
    EXPECT_THROW((void)make_sweep_cell(
                     "bad", experiment_config{.balls = 0, .reps = 3, .seed = 1},
                     [](std::uint64_t s) {
                         return kdc::core::single_choice_process(8, s);
                     }),
                 kdc::contract_violation);
    sweep_cell no_runner;
    no_runner.name = "no-runner";
    no_runner.config = {.balls = 8, .reps = 1, .seed = 1};
    EXPECT_THROW((void)run_sweep({no_runner}), kdc::contract_violation);
}

TEST(SweepGrid, CustomPayloadTypeAndRaggedReps) {
    // run_grid is the payload-generic layer: cells may return any type and
    // have different repetition counts; slots land at grid[cell][rep].
    thread_pool pool(4);
    const std::vector<std::uint32_t> reps{3, 1, 5};
    const auto grid = run_grid<std::string>(
        pool, reps, [](std::size_t cell, std::uint32_t rep) {
            return std::to_string(cell) + ":" + std::to_string(rep);
        });
    ASSERT_EQ(grid.size(), 3u);
    for (std::size_t c = 0; c < grid.size(); ++c) {
        ASSERT_EQ(grid[c].size(), reps[c]);
        for (std::uint32_t r = 0; r < reps[c]; ++r) {
            EXPECT_EQ(grid[c][r],
                      std::to_string(c) + ":" + std::to_string(r));
        }
    }
}

TEST(SweepGrid, RejectsZeroRepCells) {
    thread_pool pool(2);
    const std::vector<std::uint32_t> reps{2, 0};
    EXPECT_THROW((void)run_grid<int>(pool, reps,
                                     [](std::size_t, std::uint32_t) {
                                         return 1;
                                     }),
                 kdc::contract_violation);
}

/// A deterministic two-cell sweep for emitter tests.
std::vector<sweep_outcome> emitter_fixture() {
    std::vector<sweep_cell> cells;
    cells.push_back(make_sweep_cell(
        "alpha", {.balls = 64, .reps = 3, .seed = 1},
        [](std::uint64_t s) {
            return kdc::core::single_choice_process(64, s);
        }));
    cells.push_back(make_sweep_cell(
        "beta, quoted", {.balls = 64, .reps = 3, .seed = 2},
        [](std::uint64_t s) {
            return kdc::core::d_choice_process(64, 2, s);
        }));
    return run_sweep(cells, with_threads(2));
}

TEST(SweepEmitter, RendersAlignedTable) {
    const auto outcomes = emitter_fixture();
    sweep_emitter emitter;
    emitter.add_name_column("cell")
        .add_stat_column("mean max",
                         [](const sweep_outcome& outcome) {
                             return outcome.result.max_load_stats.mean();
                         })
        .add_max_load_set_column("set");
    const auto table = emitter.to_table(outcomes);
    EXPECT_EQ(table.row_count(), outcomes.size());
    const auto rendered = table.to_string();
    EXPECT_NE(rendered.find("cell"), std::string::npos);
    EXPECT_NE(rendered.find("alpha"), std::string::npos);
    EXPECT_NE(rendered.find("beta, quoted"), std::string::npos);
}

TEST(SweepEmitter, WritesEscapedCsvWithHeader) {
    const auto outcomes = emitter_fixture();
    sweep_emitter emitter;
    emitter.add_name_column("cell")
        .add_max_load_set_column("max_load_set")
        .add_column("row",
                    [](const sweep_outcome&, std::size_t row) {
                        return std::to_string(row);
                    });
    std::ostringstream out;
    emitter.write_csv(out, outcomes);
    const auto csv = out.str();
    // Header + one line per outcome.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1 + outcomes.size());
    EXPECT_EQ(csv.rfind("cell,max_load_set,row\n", 0), 0u);
    // Fields containing commas are RFC-4180 quoted.
    EXPECT_NE(csv.find("\"beta, quoted\""), std::string::npos);
    EXPECT_NE(csv.find(",1\n"), std::string::npos);
}

TEST(SweepEmitter, IndexReachesBenchSideMetadata) {
    const auto outcomes = emitter_fixture();
    const std::vector<std::string> metadata{"first", "second"};
    sweep_emitter emitter;
    emitter.add_column("meta",
                       [&metadata](const sweep_outcome&, std::size_t row) {
                           return metadata[row];
                       });
    const auto rendered = emitter.to_table(outcomes).to_string();
    EXPECT_NE(rendered.find("first"), std::string::npos);
    EXPECT_NE(rendered.find("second"), std::string::npos);
}

} // namespace
