// The fully-parallel pipeline's two new degrees of freedom: partitioned
// selection (selection segments + deterministic conflict hand-off) and
// parallel tape pregeneration. Byte-identity against the serial kernel is
// the only acceptance bar — across adversarial conflict densities, every
// segment count, every thread count, and sampler-block misalignments.

#include "core/sharded_kernel.hpp"

#include <cstdint>

#include <gtest/gtest.h>

#include "core/level_process.hpp"
#include "core/process.hpp"
#include "core/thread_pool.hpp"

namespace kdc::core {
namespace {

TEST(ShardedSelection, ResolveSegmentsClampsAndAutoScales) {
    // Explicit requests are clamped into [1, rounds].
    EXPECT_EQ(resolve_selection_segments(100, 7, 1), 7u);
    EXPECT_EQ(resolve_selection_segments(100, 1000, 8), 100u);
    EXPECT_EQ(resolve_selection_segments(0, 5, 8), 1u);
    // Auto: serial without a second worker.
    EXPECT_EQ(resolve_selection_segments(100000, 0, 1), 1u);
    // Auto: one segment per worker, but >= 64 rounds per segment.
    EXPECT_EQ(resolve_selection_segments(10000, 0, 8), 8u);
    EXPECT_EQ(resolve_selection_segments(100, 0, 8), 1u);
    EXPECT_EQ(resolve_selection_segments(128, 0, 2), 2u);
}

/// Serial reference loads for (n, k, d, seed, balls).
load_vector serial_loads(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                         std::uint64_t seed, std::uint64_t balls) {
    kd_choice_process reference(n, k, d, seed);
    reference.run_balls(balls);
    return reference.loads();
}

// Adversarial partitioned selection: tiny n and large d make nearly every
// bin of a chunk conflicted (and duplicated probes common), and a segment
// per round maximizes cross-segment conflicts — almost everything goes
// through the dirty-round hand-off. The output must not budge.
TEST(ShardedSelection, AdversarialTinyNLargeDManySegments) {
    constexpr std::uint64_t n = 4096;
    constexpr std::uint64_t k = 4;
    constexpr std::uint64_t d = 16;
    constexpr std::uint64_t seed = 77;
    constexpr std::uint64_t balls = 8 * n;

    const load_vector expected = serial_loads(n, k, d, seed, balls);
    thread_pool pool(8);
    for (const std::uint64_t selpar : {2ull, 7ull, 64ull}) {
        sharded_kd_process process(n, k, d, seed, /*shards=*/4, selpar);
        process.use_pool(&pool);
        process.run_balls(balls);
        EXPECT_EQ(process.loads(), expected) << "selpar=" << selpar;
    }
}

// Even tinier: every round is a separate chunk and duplicates are near
// certain (d = n/4), so the dup side table and occurrence heights carry
// the whole selection.
TEST(ShardedSelection, DuplicateSaturatedRoundsStayExact) {
    constexpr std::uint64_t n = 64;
    constexpr std::uint64_t k = 2;
    constexpr std::uint64_t d = 16;
    constexpr std::uint64_t seed = 5;
    constexpr std::uint64_t balls = 400;

    const load_vector expected = serial_loads(n, k, d, seed, balls);
    thread_pool pool(4);
    for (const std::uint64_t selpar : {1ull, 3ull, 64ull}) {
        sharded_kd_process process(n, k, d, seed, /*shards=*/2, selpar);
        process.use_pool(&pool);
        process.run_balls(balls);
        EXPECT_EQ(process.loads(), expected) << "selpar=" << selpar;
    }
}

// The property the ISSUE names: segments {1, 2, 7, 64} x threads {1, 2, 8}
// never change the output of either sharded kernel.
TEST(ShardedSelection, SegmentAndThreadGridNeverChangesPerBinOutput) {
    constexpr std::uint64_t n = 10'000;
    constexpr std::uint64_t k = 3;
    constexpr std::uint64_t d = 8;
    constexpr std::uint64_t seed = 2024;
    constexpr std::uint64_t balls = 3 * n;

    const load_vector expected = serial_loads(n, k, d, seed, balls);
    for (const unsigned threads : {1u, 2u, 8u}) {
        thread_pool pool(threads);
        for (const std::uint64_t selpar : {1ull, 2ull, 7ull, 64ull}) {
            sharded_kd_process process(n, k, d, seed, /*shards=*/16, selpar);
            process.use_pool(&pool);
            process.run_balls(balls);
            EXPECT_EQ(process.loads(), expected)
                << "threads=" << threads << " selpar=" << selpar;
        }
    }
}

TEST(ShardedSelection, SegmentGridNeverChangesLevelKernelOutput) {
    constexpr std::uint64_t n = 2000;
    constexpr std::uint64_t k = 2;
    constexpr std::uint64_t d = 6;
    constexpr std::uint64_t seed = 31;
    constexpr std::uint64_t balls = 4000;

    kd_choice_level_process reference(n, k, d, seed);
    reference.run_balls(balls);
    for (const std::uint64_t selpar : {1ull, 7ull, 64ull}) {
        sharded_kd_level_process process(n, k, d, seed, /*shards=*/4, selpar);
        process.run_balls(balls);
        EXPECT_EQ(process.profile(), reference.profile())
            << "selpar=" << selpar;
        EXPECT_EQ(process.selection_segments(), selpar);
    }
}

// Parallel tape pregeneration: a d that does not divide the sampler's
// refill block (256) forces the mid-block slice reconstruction on almost
// every slice boundary, across many chunks (the sampler buffer carries
// partial blocks from chunk to chunk).
TEST(ShardedPregen, MisalignedBlockBoundariesReconstructExactly) {
    constexpr std::uint64_t n = 2000;
    constexpr std::uint64_t k = 2;
    constexpr std::uint64_t d = 5;
    constexpr std::uint64_t seed = 99;
    constexpr std::uint64_t balls = 12'000;

    const load_vector expected = serial_loads(n, k, d, seed, balls);
    for (const unsigned threads : {2u, 8u}) {
        thread_pool pool(threads);
        sharded_kd_process process(n, k, d, seed);
        process.use_pool(&pool);
        process.run_balls(balls);
        EXPECT_EQ(process.loads(), expected) << "threads=" << threads;
    }
}

// Split runs flush the sampler mid-buffer between run_balls calls; the
// slice arithmetic must keep reconstructing from that carried state.
TEST(ShardedPregen, SplitRunsWithParallelPregenMatchOneBigRun) {
    constexpr std::uint64_t n = 3000;
    constexpr std::uint64_t k = 1;
    constexpr std::uint64_t d = 3;
    constexpr std::uint64_t seed = 12;

    thread_pool pool(4);
    sharded_kd_process one(n, k, d, seed);
    one.use_pool(&pool);
    one.run_balls(9000);

    sharded_kd_process split(n, k, d, seed);
    split.use_pool(&pool);
    split.run_balls(1);
    split.run_balls(2999);
    split.run_balls(6000);
    EXPECT_EQ(split.loads(), one.loads());
}

TEST(ShardedPregen, PhaseTimesAccumulateAcrossChunks) {
    thread_pool pool(2);
    sharded_kd_process process(10'000, 1, 2, 7);
    process.use_pool(&pool);
    const auto& times = process.phase_times();
    EXPECT_EQ(times.pregen + times.bucket + times.gather + times.select +
                  times.handoff + times.commit,
              0.0);
    process.run_balls(30'000);
    EXPECT_GT(times.pregen, 0.0);
    EXPECT_GT(times.gather, 0.0);
    EXPECT_GT(times.select, 0.0);
    EXPECT_GT(times.commit, 0.0);
    EXPECT_GE(times.bucket, 0.0);
    EXPECT_GE(times.handoff, 0.0);
}

} // namespace
} // namespace kdc::core
