#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <mutex>

#include "support/contracts.hpp"

namespace kdc::stats {

namespace {

constexpr int max_iterations = 500;
constexpr double epsilon = 1e-14;

/// std::lgamma writes the process-global `signgam`, which is a data race
/// once the execution engine evaluates stopping decisions on two pool
/// workers concurrently (TSan flags it). Use the reentrant lgamma_r where
/// the platform provides one; otherwise serialize the calls.
double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    static std::mutex lgamma_mutex;
    const std::lock_guard<std::mutex> lock(lgamma_mutex);
    return std::lgamma(x);
#endif
}

/// P(a,x) by the power series gamma(a,x) = x^a e^-x sum x^n / (a)_{n+1}.
double gamma_p_series(double a, double x) {
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < max_iterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * epsilon) {
            break;
        }
    }
    return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

/// Q(a,x) by the Lentz continued fraction for the upper incomplete gamma.
double gamma_q_continued_fraction(double a, double x) {
    constexpr double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= max_iterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny) {
            d = tiny;
        }
        c = b + an / c;
        if (std::abs(c) < tiny) {
            c = tiny;
        }
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < epsilon) {
            break;
        }
    }
    return std::exp(-x + a * std::log(x) - lgamma_threadsafe(a)) * h;
}

} // namespace

double regularized_gamma_p(double a, double x) {
    KD_EXPECTS(a > 0.0);
    KD_EXPECTS(x >= 0.0);
    if (x == 0.0) {
        return 0.0;
    }
    if (x < a + 1.0) {
        return gamma_p_series(a, x);
    }
    return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
    return 1.0 - regularized_gamma_p(a, x);
}

double chi_square_cdf(double x, double dof) {
    KD_EXPECTS(dof > 0.0);
    if (x <= 0.0) {
        return 0.0;
    }
    return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double kolmogorov_q(double lambda) {
    if (lambda <= 0.0) {
        return 1.0;
    }
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 200; ++j) {
        const double term =
            std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                     lambda * lambda);
        sum += sign * term;
        sign = -sign;
        if (term < 1e-16) {
            break;
        }
    }
    const double q = 2.0 * sum;
    if (q < 0.0) {
        return 0.0;
    }
    if (q > 1.0) {
        return 1.0;
    }
    return q;
}

namespace {

/// Lentz continued fraction for the incomplete beta; valid (fast) for
/// x < (a+1)/(a+b+2).
double beta_continued_fraction(double a, double b, double x) {
    constexpr double tiny = 1e-300;
    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < tiny) {
        d = tiny;
    }
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iterations; ++m) {
        const double md = static_cast<double>(m);
        const double m2 = 2.0 * md;
        double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < tiny) {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if (std::abs(c) < tiny) {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < tiny) {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if (std::abs(c) < tiny) {
            c = tiny;
        }
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < epsilon) {
            break;
        }
    }
    return h;
}

} // namespace

double regularized_beta(double a, double b, double x) {
    KD_EXPECTS(a > 0.0);
    KD_EXPECTS(b > 0.0);
    KD_EXPECTS(x >= 0.0 && x <= 1.0);
    if (x == 0.0) {
        return 0.0;
    }
    if (x == 1.0) {
        return 1.0;
    }
    const double front =
        std::exp(lgamma_threadsafe(a + b) - lgamma_threadsafe(a) -
                 lgamma_threadsafe(b) + a * std::log(x) +
                 b * std::log1p(-x));
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * beta_continued_fraction(a, b, x) / a;
    }
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
    KD_EXPECTS(dof > 0.0);
    if (t == 0.0) {
        return 0.5;
    }
    // P(T <= t) = 1 - I_{dof/(dof+t^2)}(dof/2, 1/2) / 2 for t > 0, and the
    // distribution is symmetric about zero.
    const double x = dof / (dof + t * t);
    const double tail = 0.5 * regularized_beta(dof / 2.0, 0.5, x);
    return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double dof) {
    KD_EXPECTS(dof > 0.0);
    KD_EXPECTS_MSG(p > 0.0 && p < 1.0,
                   "t quantile needs a probability strictly inside (0, 1)");
    if (p == 0.5) {
        return 0.0;
    }
    // Symmetry: solve in the upper half only.
    if (p < 0.5) {
        return -student_t_quantile(1.0 - p, dof);
    }
    // Bracket [0, hi] by doubling, then bisect. The CDF is strictly
    // increasing, so this converges unconditionally.
    double hi = 1.0;
    while (student_t_cdf(hi, dof) < p) {
        hi *= 2.0;
        KD_ASSERT_MSG(hi < 1e300, "t quantile bracket runaway");
    }
    double lo = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (student_t_cdf(mid, dof) < p) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo <= 1e-13 * std::max(1.0, hi)) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

double log_factorial(std::uint64_t n) {
    return lgamma_threadsafe(static_cast<double>(n) + 1.0);
}

std::uint64_t smallest_factorial_exceeding_log(double log_bound) {
    std::uint64_t y = 0;
    while (log_factorial(y) <= log_bound) {
        ++y;
        KD_ASSERT_MSG(y < 1'000'000, "factorial inversion runaway");
    }
    return y;
}

} // namespace kdc::stats
