// Theorem 2 reproduction (heavily loaded case): for m > n balls and d >= 2k,
//   ln ln n / ln(d-k+1) - O(1)  <=  M(k,d,m,n) - m/n  <=  ln ln n /
//   ln floor(d/k) + O(1)
// via the majorization sandwich A(1, d-k+1) <=mj A(k,d) <=mj A(1, floor(d/k)).
//
// The harness sweeps m/n and prints, per configuration, the measured gap
// (max load minus mean load m/n) for the (k,d)-choice process and for both
// d-choice brackets, plus the Theorem 2 bound values. The shape to verify:
// the (k,d) gap sits between the two brackets and stays flat in m
// (Berenbrink et al.'s m-independence, which the paper's proof leans on).
//
//   ./theorem2_heavy [--n=65536] [--reps=5] [--seed=4]
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins");
    args.add_option("reps", "5", "repetitions per point");
    args.add_option("seed", "4", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    struct config {
        std::uint64_t k, d;
    };
    const std::vector<config> configs{{2, 4}, {2, 6}, {4, 8}, {8, 16}};
    const std::vector<std::uint64_t> load_factors{1, 2, 4, 8, 16, 32};

    std::cout << "Theorem 2: heavily loaded (k,d)-choice for d >= 2k, n = "
              << n << "\n"
              << "gap = measured max load - m/n; brackets are the d-choice "
                 "processes of the majorization sandwich\n\n";

    std::uint64_t point_seed = seed;
    for (const auto& cfg : configs) {
        const auto bound = kdc::theory::theorem2_bound(n, cfg.k, cfg.d);
        std::cout << "(k,d) = (" << cfg.k << "," << cfg.d
                  << "): Theorem 2 bounds: lower ~ "
                  << kdc::format_fixed(bound.lower, 2) << " - O(1), upper ~ "
                  << kdc::format_fixed(bound.upper, 2) << " + O(1)\n";
        kdc::text_table table;
        table.set_header({"m/n", "gap A(1," +
                              std::to_string(cfg.d - cfg.k + 1) + ") [lo]",
                          "gap (k,d)", "gap A(1," +
                              std::to_string(cfg.d / cfg.k) + ") [hi]"});
        for (const auto factor : load_factors) {
            ++point_seed;
            const std::uint64_t m = factor * n;
            const auto mid = kdc::core::run_kd_experiment(
                n, cfg.k, cfg.d,
                {.balls = m, .reps = reps, .seed = point_seed});
            const auto lo = kdc::core::run_d_choice_experiment(
                n, cfg.d - cfg.k + 1,
                {.balls = m, .reps = reps, .seed = point_seed + 7000});
            const auto hi = kdc::core::run_d_choice_experiment(
                n, cfg.d / cfg.k,
                {.balls = m, .reps = reps, .seed = point_seed + 9000});
            table.add_row({std::to_string(factor),
                           kdc::format_fixed(lo.gap_stats.mean(), 2),
                           kdc::format_fixed(mid.gap_stats.mean(), 2),
                           kdc::format_fixed(hi.gap_stats.mean(), 2)});
        }
        std::cout << table << '\n';
    }
    std::cout << "Expected shape: middle column between the brackets, all "
                 "three flat in m/n.\n";
    return 0;
}
