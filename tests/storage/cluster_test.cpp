#include "storage/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/metrics.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::storage::placement_policy;
using kdc::storage::storage_cluster;
using kdc::storage::storage_config;

storage_config base_config(placement_policy policy) {
    storage_config config;
    config.servers = 256;
    config.replicas_per_file = 3;
    config.probes = 6;
    config.policy = policy;
    config.seed = 1;
    return config;
}

TEST(StorageConfig, ValidatesParameters) {
    auto config = base_config(placement_policy::kd_choice);
    config.probes = 3; // == replicas, need strictly more for batch policies
    EXPECT_THROW(config.validate(), kdc::contract_violation);

    config = base_config(placement_policy::per_replica_d_choice);
    config.probes = 2; // fine per replica
    EXPECT_NO_THROW(config.validate());

    config = base_config(placement_policy::kd_choice);
    config.probes = 500; // > servers
    EXPECT_THROW(config.validate(), kdc::contract_violation);
}

TEST(StorageCluster, PlacesExpectedReplicaCount) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    cluster.place_files(100);
    EXPECT_EQ(cluster.files_placed(), 100u);
    const auto& loads = cluster.server_loads();
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
              300u);
}

TEST(StorageCluster, KdPlacementHonorsMultiplicityRule) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    for (int i = 0; i < 200; ++i) {
        const auto id = cluster.place_file();
        const auto& placement = cluster.placement(id);
        ASSERT_EQ(placement.replicas.size(), 3u);
        ASSERT_EQ(placement.candidates.size(), 6u);
        // Each replica server must appear among the candidates, at most as
        // often as it was sampled.
        for (const auto server : placement.replicas) {
            const auto sampled = std::count(placement.candidates.begin(),
                                            placement.candidates.end(),
                                            server);
            const auto placed = std::count(placement.replicas.begin(),
                                           placement.replicas.end(), server);
            EXPECT_GE(sampled, placed);
        }
    }
}

TEST(StorageCluster, PlacementMessagesPerPolicy) {
    {
        storage_cluster cluster(base_config(placement_policy::kd_choice));
        cluster.place_files(50);
        EXPECT_EQ(cluster.placement_messages(), 50u * 6u);
    }
    {
        auto config = base_config(placement_policy::per_replica_d_choice);
        config.probes = 2;
        storage_cluster cluster(config);
        cluster.place_files(50);
        EXPECT_EQ(cluster.placement_messages(), 50u * 3u * 2u);
    }
    {
        storage_cluster cluster(base_config(placement_policy::random));
        cluster.place_files(50);
        EXPECT_EQ(cluster.placement_messages(), 50u * 3u);
    }
}

TEST(StorageCluster, SearchCostMatchesPaperClaim) {
    // (k, k+1)-choice: search costs k+1 probes; per-chunk two-choice costs
    // 2k (Section 1.3).
    auto kd_config = base_config(placement_policy::kd_choice);
    kd_config.replicas_per_file = 4;
    kd_config.probes = 5; // d = k+1
    storage_cluster kd(kd_config);
    const auto kd_file = kd.place_file();
    EXPECT_EQ(kd.search_cost(kd_file), 5u);

    auto two_config = base_config(placement_policy::per_replica_d_choice);
    two_config.replicas_per_file = 4;
    two_config.probes = 2;
    storage_cluster two(two_config);
    const auto two_file = two.place_file();
    EXPECT_EQ(two.search_cost(two_file), 8u); // 2k
}

TEST(StorageCluster, KdBalancesBetterThanRandom) {
    auto kd_config = base_config(placement_policy::kd_choice);
    auto rnd_config = base_config(placement_policy::random);
    storage_cluster kd(kd_config);
    storage_cluster rnd(rnd_config);
    kd.place_files(2000);
    rnd.place_files(2000);
    EXPECT_LT(compute_load_metrics(kd.server_loads()).max_load,
              compute_load_metrics(rnd.server_loads()).max_load);
}

TEST(StorageCluster, DeterministicUnderSeed) {
    storage_cluster a(base_config(placement_policy::kd_choice));
    storage_cluster b(base_config(placement_policy::kd_choice));
    a.place_files(100);
    b.place_files(100);
    EXPECT_EQ(a.server_loads(), b.server_loads());
}

TEST(StorageCluster, AvailabilityReplicationVsChunking) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    cluster.place_files(200);
    const double repl =
        cluster.estimate_availability(0.1, /*need_all=*/false, 50, 7);
    const double chunk =
        cluster.estimate_availability(0.1, /*need_all=*/true, 50, 7);
    // Replication survives any single replica; chunking needs all three.
    EXPECT_GT(repl, chunk);
    // Sanity against the analytic values: 1 - 0.1^3 ~ 0.999 for distinct
    // servers (duplicate-replica placements can only lower it slightly);
    // 0.9^3 = 0.729 for chunking.
    EXPECT_GT(repl, 0.99);
    EXPECT_NEAR(chunk, 0.729, 0.05);
}

TEST(StorageCluster, AvailabilityAtZeroAndOneFailureProb) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    cluster.place_files(10);
    EXPECT_DOUBLE_EQ(cluster.estimate_availability(0.0, true, 5, 1), 1.0);
    EXPECT_DOUBLE_EQ(cluster.estimate_availability(1.0, false, 5, 1), 0.0);
}

TEST(StorageCluster, AvailabilityRequiresPlacedFiles) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    EXPECT_THROW((void)cluster.estimate_availability(0.1, false, 5, 1),
                 kdc::contract_violation);
}

TEST(StorageCluster, BatchGreedySpreadsLoad) {
    storage_cluster greedy(base_config(placement_policy::batch_greedy));
    greedy.place_files(2000);
    storage_cluster rnd(base_config(placement_policy::random));
    rnd.place_files(2000);
    EXPECT_LE(compute_load_metrics(greedy.server_loads()).max_load,
              compute_load_metrics(rnd.server_loads()).max_load);
}

TEST(StorageCluster, PlacementAccessorBoundsChecked) {
    storage_cluster cluster(base_config(placement_policy::kd_choice));
    (void)cluster.place_file();
    EXPECT_NO_THROW((void)cluster.placement(0));
    EXPECT_THROW((void)cluster.placement(1), kdc::contract_violation);
}

} // namespace
