#!/usr/bin/env python3
"""Check that intra-repo markdown links in README.md and docs/ resolve.

Stdlib only. For every inline link [text](target) in the scanned pages:

  * external targets (http://, https://, mailto:) are skipped;
  * a path target must exist on disk, resolved relative to the file
    containing the link;
  * a `path#anchor` or bare `#anchor` target must also name a heading
    that GitHub's anchor algorithm would produce in the target page.

Exit 0 when every link resolves, 1 with one line per broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PAGES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading)
    heading = re.sub(r"[*_]", "", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def anchors_of(page: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in page.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(github_anchor(match.group(1)))
    return anchors


def links_of(page: Path) -> list[str]:
    links: list[str] = []
    in_fence = False
    for line in page.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK.findall(line))
    return links


def main() -> int:
    broken: list[str] = []
    for page in PAGES:
        if not page.exists():
            broken.append(f"{page}: scanned page does not exist")
            continue
        for target in links_of(page):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = page if not path_part else (page.parent / path_part)
            rel = page.relative_to(REPO)
            if not resolved.exists():
                broken.append(f"{rel}: broken link target '{target}'")
                continue
            if anchor and resolved.suffix == ".md":
                if github_anchor(anchor) not in anchors_of(resolved):
                    broken.append(f"{rel}: missing anchor '#{anchor}' in '{target}'")
    for line in broken:
        print(line, file=sys.stderr)
    if not broken:
        print(f"checked {len(PAGES)} pages: all intra-repo links resolve")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
