// Head-to-head against the related allocation schemes the paper discusses
// (Section 1): single choice, classic d-choice [Azar et al.], the
// (1+beta)-choice of Peres-Talwar-Wieder, and the adaptive threshold
// scheme — all at *matched message budgets*, which is the paper's axis of
// comparison. A (k,d) process spends d/k messages per ball, so:
//
//     budget 1.25 msg/ball:  (1+beta) beta=.25  vs  (4,5)-choice
//     budget 1.5  msg/ball:  (1+beta) beta=.5   vs  (2,3)-choice
//     budget 2    msg/ball:  2-choice           vs  (2,4), (k, 2k)
//     budget 3    msg/ball:  3-choice           vs  (2,6), (k, 3k)
//
//   ./baselines_compare [--n=196608] [--reps=10] [--seed=6]
//                       [--scenario "kd:n=..."]
//
// Every scheme is a declarative scenario run through
// run_scenario_experiment (core/scenario.hpp): single/d-choice, (1+beta)
// and the adaptive threshold baseline are policy-registry entries, so one
// code path constructs them all. --scenario overrides the legacy flags key
// by key (byte-identical output for equivalent settings).
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("reps", "10", "repetitions per scheme");
    args.add_option("seed", "6", "master seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;

    kdc::text_table table;
    table.set_header({"budget", "scheme", "msgs/ball", "mean max", "gap",
                      "max loads seen"});
    table.set_align(1, kdc::table_align::left);

    std::uint64_t scheme_id = 0;
    auto run = [&](const char* budget, const std::string& name,
                   const kdc::core::scenario& sc, std::uint64_t balls) {
        const auto result = kdc::core::run_scenario_experiment(
            sc,
            {.balls = balls, .reps = reps, .seed = seed + (++scheme_id)});
        table.add_row(
            {budget, name,
             kdc::format_fixed(result.message_stats.mean() /
                                   static_cast<double>(balls), 3),
             kdc::format_fixed(result.max_load_stats.mean(), 2),
             kdc::format_fixed(result.gap_stats.mean(), 2),
             result.max_load_set()});
    };

    using kdc::core::probe_policy;
    auto kd = [&](std::uint64_t k, std::uint64_t d) {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = probe_policy::uniform;
        sc.k = k;
        sc.d = d;
        return sc;
    };
    auto one_plus_beta = [&](double beta) {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = probe_policy::one_plus_beta;
        sc.beta = beta;
        return sc;
    };
    auto dchoice = [&](std::uint64_t d) {
        auto sc = merged;
        sc.family = "dchoice";
        sc.probe = probe_policy::uniform;
        sc.k = 1;
        sc.d = d;
        return sc;
    };

    {
        auto sc = merged;
        sc.family = "single";
        sc.probe = probe_policy::uniform;
        run("1.0", "single choice", sc, n);
    }

    run("1.25", "(1+beta) beta=0.25", one_plus_beta(0.25), n);
    run("1.25", "(4,5)-choice", kd(4, 5), n);

    run("1.5", "(1+beta) beta=0.5", one_plus_beta(0.5), n);
    run("1.5", "(2,3)-choice", kd(2, 3), n);

    run("2.0", "2-choice", dchoice(2), n);
    run("2.0", "(2,4)-choice", kd(2, 4), n);
    run("2.0", "(64,128)-choice", kd(64, 128), n);

    run("3.0", "3-choice", dchoice(3), n);
    run("3.0", "(2,6)-choice", kd(2, 6), n);
    run("3.0", "(64,192)-choice", kd(64, 192), n);

    {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = probe_policy::threshold;
        sc.threshold = 2;
        sc.cap = 16;
        run("~1.1", "adaptive T=2 cap=16", sc, n);
    }

    std::cout << "Baseline comparison at matched message budgets, n = " << n
              << " (" << reps << " reps)\n\n"
              << table << '\n'
              << "Shape to verify: within each budget the (k,d) variant with "
                 "larger k matches or beats\n"
                 "the per-ball baselines; (k,2k)/(k,3k) with k >> 1 reach "
                 "constant max load.\n";
    return 0;
}
