#include "core/level_profile.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/cli.hpp"
#include "support/crc32.hpp"

namespace kdc::core {

namespace {

/// A little initial headroom so the first rounds of an empty profile don't
/// immediately trigger a Fenwick rebuild.
constexpr std::uint64_t initial_levels = 8;

} // namespace

level_profile::level_profile(std::uint64_t n)
    : counts_(initial_levels, 0), fenwick_(initial_levels), n_(n) {
    KD_EXPECTS_MSG(n >= 1, "a profile needs at least one bin");
    counts_[0] = n;
    fenwick_.add(0, static_cast<std::int64_t>(n));
}

level_profile level_profile::from_loads(const load_vector& loads) {
    KD_EXPECTS_MSG(!loads.empty(), "a profile needs at least one bin");
    level_profile profile(loads.size());
    // Rebuild the counts from scratch rather than n move_bin calls.
    std::fill(profile.counts_.begin(), profile.counts_.end(), 0);
    for (const bin_load load : loads) {
        if (load >= profile.counts_.size()) {
            profile.counts_.resize(std::max<std::size_t>(
                                       load + 1, profile.counts_.size() * 2),
                                   0);
        }
        ++profile.counts_[load];
        profile.total_balls_ += load;
        profile.max_level_ = std::max<std::uint64_t>(profile.max_level_, load);
    }
    profile.fenwick_ = fenwick_tree(profile.counts_.size());
    for (std::size_t level = 0; level < profile.counts_.size(); ++level) {
        if (profile.counts_[level] != 0) {
            profile.fenwick_.add(
                level, static_cast<std::int64_t>(profile.counts_[level]));
        }
    }
    return profile;
}

level_profile level_profile::from_counts(
    const std::vector<std::uint64_t>& counts) {
    std::uint64_t n = 0;
    for (const std::uint64_t count : counts) {
        n += count;
    }
    KD_EXPECTS_MSG(n >= 1, "a profile needs at least one bin");
    level_profile profile(n);
    profile.ensure_levels(std::max<std::uint64_t>(counts.size(), 1));
    std::fill(profile.counts_.begin(), profile.counts_.end(), 0);
    profile.fenwick_ = fenwick_tree(profile.counts_.size());
    profile.total_balls_ = 0;
    profile.max_level_ = 0;
    for (std::size_t level = 0; level < counts.size(); ++level) {
        if (counts[level] == 0) {
            continue;
        }
        profile.counts_[level] = counts[level];
        profile.fenwick_.add(level,
                             static_cast<std::int64_t>(counts[level]));
        profile.total_balls_ += level * counts[level];
        profile.max_level_ = level;
    }
    return profile;
}

void level_profile::ensure_levels(std::uint64_t level_count) {
    if (level_count <= counts_.size()) {
        return;
    }
    fenwick_.grow_to(level_count); // doubles internally, amortized O(L)
    counts_.resize(fenwick_.size(), 0);
}

void level_profile::extract_bin(std::uint64_t level) {
    KD_EXPECTS_MSG(level < counts_.size() && counts_[level] >= 1,
                   "extract_bin needs a bin at that level");
    --counts_[level];
    fenwick_.add(level, -1);
    total_balls_ -= level;
    if (level == max_level_ && counts_[level] == 0) {
        while (max_level_ > 0 && counts_[max_level_] == 0) {
            --max_level_;
        }
    }
}

void level_profile::insert_bin(std::uint64_t level) {
    KD_EXPECTS_MSG(level < counts_.size(),
                   "insert_bin beyond capacity: call ensure_levels first");
    ++counts_[level];
    fenwick_.add(level, 1);
    total_balls_ += level;
    max_level_ = std::max(max_level_, level);
}

load_vector level_profile::to_sorted_loads() const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "profile has extracted bins mid-round");
    load_vector loads;
    loads.reserve(n_);
    for (std::uint64_t level = max_level_ + 1; level-- > 0;) {
        loads.insert(loads.end(), counts_[level],
                     static_cast<bin_load>(level));
    }
    return loads;
}

namespace {

/// Magic line of the snapshot format; the trailing integer is the version.
/// Version 2 adds the CRC-32 trailer line ("crc32 <8 hex digits>") over
/// every preceding byte; version-1 files (no trailer) are refused.
constexpr const char* snapshot_magic = "kdc-level-profile";
constexpr int snapshot_version = 2;

} // namespace

void level_profile::save(std::ostream& out) const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "cannot snapshot a profile with extracted bins mid-round");
    std::ostringstream body;
    body << snapshot_magic << ' ' << snapshot_version << '\n';
    body << n_ << ' ' << (max_level_ + 1) << '\n';
    for (std::uint64_t level = 0; level <= max_level_; ++level) {
        body << counts_[level] << (level == max_level_ ? '\n' : ' ');
    }
    const std::string text = body.str();
    out << text << "crc32 " << std::hex << std::setw(8) << std::setfill('0')
        << crc32(text) << std::dec << '\n';
    if (!out) {
        throw cli_error("level_profile snapshot write failed");
    }
}

std::string checked_snapshot_body(std::istream& in, const char* what) {
    const std::string prefix = std::string(what) + " snapshot: ";
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    // Locate the trailer: the LAST line must be "crc32 <8 hex digits>".
    // The check runs before any field is parsed, so no corrupted byte —
    // header, counts or the trailer itself — ever reaches the parser.
    const auto at = text.rfind("crc32 ");
    if (at == std::string::npos || (at != 0 && text[at - 1] != '\n')) {
        throw cli_error(prefix + "missing 'crc32 <hex>' trailer (truncated "
                                 "file or pre-v2 snapshot?)");
    }
    const std::string hex = text.substr(at + 6);
    if (hex.size() != 9 || hex.back() != '\n') {
        throw cli_error(prefix + "malformed crc32 trailer '" +
                        hex.substr(0, 16) + "'");
    }
    std::uint32_t stated = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const char c = hex[i];
        std::uint32_t digit = 0;
        if (c >= '0' && c <= '9') {
            digit = static_cast<std::uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<std::uint32_t>(c - 'a') + 10;
        } else {
            throw cli_error(prefix + "malformed crc32 trailer '" + hex +
                            "' (expected 8 lowercase hex digits)");
        }
        stated = (stated << 4) | digit;
    }
    const std::string body = text.substr(0, at);
    const std::uint32_t actual = crc32(body);
    if (actual != stated) {
        std::ostringstream msg;
        msg << prefix << "CRC mismatch (stated " << std::hex << std::setw(8)
            << std::setfill('0') << stated << ", computed " << std::setw(8)
            << actual << "): the file is corrupted or truncated";
        throw cli_error(msg.str());
    }
    return body;
}

level_profile level_profile::load(std::istream& in) {
    const std::string body = checked_snapshot_body(in, "level_profile");
    std::istringstream fields(body);
    std::string magic;
    int version = 0;
    if (!(fields >> magic >> version)) {
        throw cli_error(
            "level_profile snapshot: missing header (expected '" +
            std::string(snapshot_magic) + " <version>')");
    }
    if (magic != snapshot_magic) {
        throw cli_error(
            "level_profile snapshot: bad magic '" + magic + "' (expected '" +
            std::string(snapshot_magic) + "')");
    }
    if (version != snapshot_version) {
        throw cli_error(
            "level_profile snapshot: unsupported version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(snapshot_version) + ")");
    }
    std::uint64_t n = 0;
    std::uint64_t levels = 0;
    if (!(fields >> n >> levels) || n == 0 || levels == 0) {
        throw cli_error("level_profile snapshot: malformed bin or "
                        "level count");
    }
    // Every count needs at least two body bytes (digit + separator), so a
    // declared level count beyond the body size cannot be honest — refuse
    // it before ensure_levels turns it into a giant allocation.
    if (levels > body.size()) {
        throw cli_error("level_profile snapshot: declared level count " +
                        std::to_string(levels) +
                        " exceeds what the file could hold");
    }
    level_profile profile(n);
    profile.ensure_levels(levels);
    std::fill(profile.counts_.begin(), profile.counts_.end(), 0);
    profile.fenwick_ = fenwick_tree(profile.counts_.size());
    profile.total_balls_ = 0;
    profile.max_level_ = 0;
    std::uint64_t bins = 0;
    for (std::uint64_t level = 0; level < levels; ++level) {
        std::uint64_t count = 0;
        if (!(fields >> count)) {
            throw cli_error(
                "level_profile snapshot: expected " + std::to_string(levels) +
                " per-level counts, got " + std::to_string(level));
        }
        profile.counts_[level] = count;
        if (count != 0) {
            profile.fenwick_.add(level, static_cast<std::int64_t>(count));
            profile.total_balls_ += level * count;
            profile.max_level_ = level;
            bins += count;
        }
    }
    fields >> std::ws;
    if (!fields.eof()) {
        throw cli_error("level_profile snapshot: trailing data after the "
                        "declared " +
                        std::to_string(levels) + " per-level counts");
    }
    if (bins != n) {
        throw cli_error(
            "level_profile snapshot: counts sum to " + std::to_string(bins) +
            " bins but the header promises " + std::to_string(n));
    }
    return profile;
}

bool level_profile::operator==(const level_profile& other) const {
    if (n_ != other.n_ || max_level_ != other.max_level_ ||
        total_balls_ != other.total_balls_) {
        return false;
    }
    for (std::uint64_t level = 0; level <= max_level_; ++level) {
        if (counts_[level] != other.counts_[level]) {
            return false;
        }
    }
    // Extraction state must agree too (a mid-round profile differs from its
    // completed counterpart even with identical counts_).
    return remaining_bins() == other.remaining_bins();
}

std::vector<level_profile> split_profile(const level_profile& profile,
                                         std::uint64_t shards) {
    const std::uint64_t n = profile.n();
    KD_EXPECTS_MSG(shards >= 1 && shards <= n,
                   "split_profile needs 1 <= shards <= n");
    KD_EXPECTS_MSG(profile.remaining_bins() == n,
                   "cannot split a profile with extracted bins mid-round");
    // Shard s holds floor(n/S) bins, +1 for the first n mod S shards; walk
    // the levels bottom-up and deal bins into shards in index order so the
    // assignment is a pure function of (profile, shards).
    std::vector<std::vector<std::uint64_t>> counts(shards);
    const std::uint64_t base = n / shards;
    const std::uint64_t extra = n % shards;
    std::uint64_t shard = 0;
    std::uint64_t filled = 0; // bins already dealt to `shard`
    std::uint64_t capacity = base + (0 < extra ? 1 : 0);
    for (std::uint64_t level = 0; level <= profile.max_level(); ++level) {
        std::uint64_t remaining = profile.bins_at(level);
        while (remaining > 0) {
            const std::uint64_t take =
                std::min(remaining, capacity - filled);
            if (counts[shard].size() <= level) {
                counts[shard].resize(level + 1, 0);
            }
            counts[shard][level] += take;
            filled += take;
            remaining -= take;
            if (filled == capacity && shard + 1 < shards) {
                ++shard;
                filled = 0;
                capacity = base + (shard < extra ? 1 : 0);
            }
        }
    }
    std::vector<level_profile> out;
    out.reserve(shards);
    for (const auto& shard_counts : counts) {
        out.push_back(level_profile::from_counts(shard_counts));
    }
    return out;
}

level_profile merge_profiles(const std::vector<level_profile>& shards) {
    KD_EXPECTS_MSG(!shards.empty(), "merge_profiles needs at least one shard");
    std::uint64_t levels = 0;
    for (const level_profile& shard : shards) {
        KD_EXPECTS_MSG(shard.remaining_bins() == shard.n(),
                       "cannot merge a profile with extracted bins mid-round");
        levels = std::max(levels, shard.max_level() + 1);
    }
    std::vector<std::uint64_t> counts(levels, 0);
    for (const level_profile& shard : shards) {
        for (std::uint64_t level = 0; level <= shard.max_level(); ++level) {
            counts[level] += shard.bins_at(level);
        }
    }
    return level_profile::from_counts(counts);
}

load_metrics level_profile::metrics() const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "profile has extracted bins mid-round");
    load_metrics out;
    out.max_load = max_level_;
    out.total_balls = total_balls_;
    out.empty_bins = counts_[0];
    std::uint64_t min_level = 0;
    while (counts_[min_level] == 0) {
        ++min_level; // terminates: some level holds a bin (n >= 1)
    }
    out.min_load = min_level;
    out.mean_load =
        static_cast<double>(total_balls_) / static_cast<double>(n_);
    out.gap = static_cast<double>(out.max_load) - out.mean_load;
    return out;
}

} // namespace kdc::core
