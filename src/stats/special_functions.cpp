#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>

#include "support/contracts.hpp"

namespace kdc::stats {

namespace {

constexpr int max_iterations = 500;
constexpr double epsilon = 1e-14;

/// P(a,x) by the power series gamma(a,x) = x^a e^-x sum x^n / (a)_{n+1}.
double gamma_p_series(double a, double x) {
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < max_iterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * epsilon) {
            break;
        }
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Q(a,x) by the Lentz continued fraction for the upper incomplete gamma.
double gamma_q_continued_fraction(double a, double x) {
    constexpr double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= max_iterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny) {
            d = tiny;
        }
        c = b + an / c;
        if (std::abs(c) < tiny) {
            c = tiny;
        }
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < epsilon) {
            break;
        }
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

} // namespace

double regularized_gamma_p(double a, double x) {
    KD_EXPECTS(a > 0.0);
    KD_EXPECTS(x >= 0.0);
    if (x == 0.0) {
        return 0.0;
    }
    if (x < a + 1.0) {
        return gamma_p_series(a, x);
    }
    return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
    return 1.0 - regularized_gamma_p(a, x);
}

double chi_square_cdf(double x, double dof) {
    KD_EXPECTS(dof > 0.0);
    if (x <= 0.0) {
        return 0.0;
    }
    return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double kolmogorov_q(double lambda) {
    if (lambda <= 0.0) {
        return 1.0;
    }
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 200; ++j) {
        const double term =
            std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                     lambda * lambda);
        sum += sign * term;
        sign = -sign;
        if (term < 1e-16) {
            break;
        }
    }
    const double q = 2.0 * sum;
    if (q < 0.0) {
        return 0.0;
    }
    if (q > 1.0) {
        return 1.0;
    }
    return q;
}

double log_factorial(std::uint64_t n) {
    return std::lgamma(static_cast<double>(n) + 1.0);
}

std::uint64_t smallest_factorial_exceeding_log(double log_bound) {
    std::uint64_t y = 0;
    while (log_factorial(y) <= log_bound) {
        ++y;
        KD_ASSERT_MSG(y < 1'000'000, "factorial inversion runaway");
    }
    return y;
}

} // namespace kdc::stats
