#include "rng/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "rng/xoshiro256ss.hpp"
#include "stats/hypothesis.hpp"

namespace {

using kdc::rng::random_permutation;
using kdc::rng::sample_with_replacement;
using kdc::rng::sample_without_replacement;
using kdc::rng::xoshiro256ss;

TEST(SampleWithReplacement, AllInRange) {
    xoshiro256ss gen(1);
    std::vector<std::uint32_t> out(64);
    sample_with_replacement(gen, 100, std::span<std::uint32_t>(out));
    for (const auto v : out) {
        EXPECT_LT(v, 100u);
    }
}

TEST(SampleWithReplacement, ProducesDuplicatesOnTinyDomain) {
    xoshiro256ss gen(2);
    std::vector<std::uint32_t> out(32);
    sample_with_replacement(gen, 2, std::span<std::uint32_t>(out));
    const std::set<std::uint32_t> distinct(out.begin(), out.end());
    EXPECT_LE(distinct.size(), 2u);
    EXPECT_LT(distinct.size(), out.size()); // with-replacement must repeat
}

TEST(SampleWithReplacement, MarginalIsUniform) {
    xoshiro256ss gen(3);
    constexpr std::uint64_t n = 10;
    std::vector<std::uint64_t> counts(n, 0);
    std::vector<std::uint32_t> out(5);
    for (int i = 0; i < 20000; ++i) {
        sample_with_replacement(gen, n, std::span<std::uint32_t>(out));
        for (const auto v : out) {
            ++counts[v];
        }
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
    xoshiro256ss gen(4);
    for (int trial = 0; trial < 100; ++trial) {
        const auto sample = sample_without_replacement(gen, 50, 10);
        ASSERT_EQ(sample.size(), 10u);
        const std::set<std::uint32_t> distinct(sample.begin(), sample.end());
        EXPECT_EQ(distinct.size(), 10u);
        for (const auto v : sample) {
            EXPECT_LT(v, 50u);
        }
    }
}

TEST(SampleWithoutReplacement, FullDomainIsPermutation) {
    xoshiro256ss gen(5);
    auto sample = sample_without_replacement(gen, 8, 8);
    std::sort(sample.begin(), sample.end());
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(sample[i], i);
    }
}

TEST(SampleWithoutReplacement, CountZeroIsEmpty) {
    xoshiro256ss gen(6);
    EXPECT_TRUE(sample_without_replacement(gen, 5, 0).empty());
}

TEST(SampleWithoutReplacement, ScratchOverloadMatchesAllocatingOverload) {
    // The epoch-stamp scratch is an implementation detail: for same-seeded
    // generators both overloads must consume the same RNG stream and return
    // the same sequence.
    xoshiro256ss gen_a(12);
    xoshiro256ss gen_b(12);
    kdc::rng::sample_scratch scratch;
    for (int trial = 0; trial < 50; ++trial) {
        const auto allocated = sample_without_replacement(gen_a, 40, 7);
        std::vector<std::uint32_t> reused(7);
        sample_without_replacement(gen_b, 40, scratch,
                                   std::span<std::uint32_t>(reused));
        EXPECT_EQ(allocated, reused);
    }
}

TEST(SampleWithoutReplacement, SharedScratchStaysDistinctAcrossCalls) {
    // Epochs must isolate calls: stamps from earlier draws may not leak into
    // later ones (which would show up as skipped or repeated indices).
    xoshiro256ss gen(13);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> out(30);
    for (int trial = 0; trial < 200; ++trial) {
        sample_without_replacement(gen, 32, scratch,
                                   std::span<std::uint32_t>(out));
        const std::set<std::uint32_t> distinct(out.begin(), out.end());
        ASSERT_EQ(distinct.size(), out.size());
        for (const auto v : out) {
            ASSERT_LT(v, 32u);
        }
    }
}

TEST(SampleWithoutReplacement, ScratchGrowsWithDomain) {
    xoshiro256ss gen(14);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> small(4);
    sample_without_replacement(gen, 8, scratch,
                               std::span<std::uint32_t>(small));
    std::vector<std::uint32_t> large(50);
    sample_without_replacement(gen, 1000, scratch,
                               std::span<std::uint32_t>(large));
    const std::set<std::uint32_t> distinct(large.begin(), large.end());
    EXPECT_EQ(distinct.size(), large.size());
    for (const auto v : large) {
        EXPECT_LT(v, 1000u);
    }
}

TEST(SampleWithoutReplacement, EachElementEquallyLikely) {
    xoshiro256ss gen(7);
    constexpr std::uint64_t n = 12;
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < 24000; ++i) {
        for (const auto v : sample_without_replacement(gen, n, 3)) {
            ++counts[v];
        }
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(Shuffle, PreservesMultiset) {
    xoshiro256ss gen(8);
    std::vector<int> items{1, 2, 2, 3, 5, 8, 13};
    auto shuffled = items;
    kdc::rng::shuffle(gen, std::span<int>(shuffled));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Shuffle, SingleAndEmptyAreNoOps) {
    xoshiro256ss gen(9);
    std::vector<int> empty;
    kdc::rng::shuffle(gen, std::span<int>(empty));
    std::vector<int> one{7};
    kdc::rng::shuffle(gen, std::span<int>(one));
    EXPECT_EQ(one[0], 7);
}

TEST(RandomPermutation, IsAPermutation) {
    xoshiro256ss gen(10);
    const auto perm = random_permutation(gen, 100);
    std::vector<bool> seen(100, false);
    for (const auto v : perm) {
        ASSERT_LT(v, 100u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(RandomPermutation, AllOrdersReachableOnThreeElements) {
    xoshiro256ss gen(11);
    std::map<std::vector<std::uint32_t>, int> orders;
    for (int i = 0; i < 6000; ++i) {
        ++orders[random_permutation(gen, 3)];
    }
    EXPECT_EQ(orders.size(), 6u);
    // Every order should appear ~1000 times; 5-sigma band ~ +-150.
    for (const auto& [order, count] : orders) {
        EXPECT_NEAR(count, 1000, 200);
    }
}

} // namespace
